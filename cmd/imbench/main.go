// Command imbench regenerates the paper's evaluation tables and figures
// (Section 7) on synthetic stand-in datasets.
//
// Usage:
//
//	imbench [flags]
//
// Flags:
//
//	-exp     comma-separated experiment ids (table2,fig1,...,fig7) or "all"
//	-scale   dataset size multiplier (default 1.0; 0.1 for a fast pass)
//	-reps    repetitions per timing cell (default 3)
//	-eps     approximation parameter ε (default 0.1)
//	-seed    RNG seed (default 2020)
//	-workers RR-generation parallelism (default GOMAXPROCS)
//	-estimator coverage backend: "exact" (CSR index), "hll" (sketch) or
//	         "sharded" (shard-parallel exact engine, zero-splice fill)
//	-sketch-p  HLL register exponent p in [4,16] (0 = default 8)
//	-bound   sample-complexity analysis: "imm" (worst-case) or "tight"
//	-k       comma-separated k sweep for fig1/fig4/fig5
//	-quick   tiny datasets and budgets (smoke test, seconds)
//	-trace   write a schema-versioned JSON run report covering every
//	         experiment (one top-level span per experiment id)
//	-metrics dump Prometheus-style RR metrics to stderr after the run
//	-log     emit structured run events on stderr: "text" or "json"
//	-serve   serve the live telemetry plane on this address (e.g. :6060):
//	         /metrics, /healthz, /readyz, /progress, /report, /debug/*
//	-pprof   deprecated alias for -serve
//
// Example:
//
//	imbench -exp fig1,fig4 -scale 0.5 -reps 3
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"subsim"
	"subsim/internal/bench"
	"subsim/internal/obs"
	"subsim/internal/obs/flight"
	"subsim/internal/obs/serve"
)

func main() {
	exp := flag.String("exp", "all", "experiments to run (comma separated ids, or 'all')")
	scale := flag.Float64("scale", 1.0, "dataset size multiplier")
	reps := flag.Int("reps", 3, "repetitions per timing cell")
	eps := flag.Float64("eps", 0.1, "approximation parameter epsilon")
	seed := flag.Uint64("seed", 2020, "random seed")
	workers := flag.Int("workers", 0, "RR generation workers (0 = GOMAXPROCS)")
	ks := flag.String("k", "", "comma-separated k sweep (overrides default)")
	estimator := flag.String("estimator", "exact", "coverage backend: exact, hll or sharded")
	sketchP := flag.Int("sketch-p", 0, "HLL register exponent p in [4,16] (0 = default)")
	bound := flag.String("bound", "imm", "sample-complexity bound: imm or tight")
	quick := flag.Bool("quick", false, "tiny smoke-test configuration")
	tracePath := flag.String("trace", "", "write the JSON run report to this file")
	metrics := flag.Bool("metrics", false, "dump Prometheus-style metrics to stderr")
	logFmt := flag.String("log", "", "structured run events on stderr: text or json")
	serveAddr := flag.String("serve", "", "serve the live telemetry plane on this address")
	pprofAddr := flag.String("pprof", "", "deprecated alias for -serve")
	flightOn := flag.Bool("flight", true, "enable the flight recorder (journal, history, crash bundles)")
	flightDir := flag.String("flight-dir", ".", "directory for diagnostic *.bundle directories")
	stallWindow := flag.Duration("stall-window", 0, "stall-watchdog window (0 = watchdog off)")
	flag.Parse()

	if *serveAddr == "" && *pprofAddr != "" {
		fmt.Fprintln(os.Stderr, "imbench: -pprof is deprecated, use -serve")
		*serveAddr = *pprofAddr
	}

	cfg := bench.DefaultConfig()
	if *quick {
		cfg = bench.QuickConfig()
	}
	cfg.Scale = *scale
	cfg.Reps = *reps
	cfg.Eps = *eps
	cfg.Seed = *seed
	cfg.Workers = *workers
	est, err := subsim.ParseEstimator(*estimator)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imbench: %v\n", err)
		os.Exit(2)
	}
	bnd, err := subsim.ParseBound(*bound)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imbench: %v\n", err)
		os.Exit(2)
	}
	cfg.Estimator = est
	cfg.SketchPrecision = *sketchP
	cfg.Bound = bnd
	// Oversubscribed workers measure goroutine-partitioning overhead, not
	// parallel speedup — the trap that poisoned the early W>1 rows of
	// BENCH_rrset.json (see their "caveat" fields). Shout about it so the
	// numbers can't masquerade as speedups.
	if p := runtime.GOMAXPROCS(0); *workers > p {
		fmt.Fprintf(os.Stderr,
			"imbench: WARNING: -workers=%d exceeds GOMAXPROCS=%d — timings will measure\n"+
				"imbench: WARNING: partitioning overhead on shared cores, NOT parallel speedup\n",
			*workers, p)
	}
	if *ks != "" {
		var sweep []int
		for _, f := range strings.Split(*ks, ",") {
			k, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || k < 1 {
				fmt.Fprintf(os.Stderr, "imbench: bad -k entry %q\n", f)
				os.Exit(2)
			}
			sweep = append(sweep, k)
		}
		cfg.Ks = sweep
	}

	ids := bench.ExperimentOrder
	if *exp != "all" {
		ids = nil
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			if bench.Experiments[id] == nil {
				fmt.Fprintf(os.Stderr, "imbench: unknown experiment %q (known: %s)\n",
					id, strings.Join(bench.ExperimentOrder, ", "))
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	if *logFmt != "" {
		cfg.Logger = obs.NewLoggerWriter(os.Stderr, *logFmt, nil)
	}
	var tr *obs.Tracer
	if *tracePath != "" || *metrics || *serveAddr != "" || *flightOn {
		tr = obs.NewTracer()
		tr.EnableTimeline(0)
		tr.SetMeta("tool", "imbench")
		if p := runtime.GOMAXPROCS(0); *workers > p {
			tr.SetMeta("caveat", fmt.Sprintf(
				"workers=%d oversubscribes GOMAXPROCS=%d: timings measure partitioning overhead, not speedup",
				*workers, p))
		}
		tr.SetMeta("experiments", strings.Join(ids, ","))
		tr.SetMeta("scale", *scale)
		tr.SetMeta("eps", *eps)
		tr.SetMeta("seed", *seed)
		tr.SetMeta("estimator", est.String())
		tr.SetMeta("bound", bnd.String())
		cfg.Tracer = tr
	}
	// Flight recorder: a benchmark sweep that hangs or crashes after
	// minutes of warm-up leaves a post-mortem bundle instead of nothing.
	if *flightOn {
		fl := tr.EnableFlight(obs.FlightConfig{
			Dir:         *flightDir,
			Tool:        "imbench",
			StallWindow: *stallWindow,
			OnBundle: func(path, reason string, err error) {
				if err != nil {
					fmt.Fprintf(os.Stderr, "imbench: flight bundle (%s): %v\n", reason, err)
					return
				}
				fmt.Fprintf(os.Stderr, "imbench: flight bundle (%s) written to %s\n", reason, path)
			},
		})
		defer fl.Close()
		defer fl.CapturePanic()
		stopSignals := fl.InstallSignalHandlers()
		defer stopSignals()
		cfg.Logger = cfg.Logger.WithFlight(fl.Journal().Stream(flight.StreamRun))
	}
	var plane *serve.Plane
	if *serveAddr != "" {
		plane = serve.New(tr)
		addr, err := plane.Start(*serveAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imbench: %v\n", err)
			os.Exit(1)
		}
		defer func() { _ = plane.Close() }()
		plane.SetGraphLoaded(true) // imbench synthesises graphs per experiment
		fmt.Fprintf(os.Stderr, "imbench: serving telemetry on %s (/metrics /healthz /readyz /progress /report /debug)\n", addr)
	}

	for _, id := range ids {
		span := tr.Span(id)
		if plane != nil {
			plane.RunStarted()
		}
		_, err := bench.Experiments[id](cfg, os.Stdout)
		span.End()
		if plane != nil {
			plane.RunFinished()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "imbench: %s: %v\n", id, err)
			os.Exit(1)
		}
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imbench: %v\n", err)
			os.Exit(1)
		}
		if err := tr.Report().WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "imbench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "imbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote trace %s\n", *tracePath)
	}
	if *metrics {
		if err := tr.Metrics().WritePrometheus(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "imbench: %v\n", err)
		}
	}
}
