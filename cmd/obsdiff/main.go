// Command obsdiff compares two schema-versioned run reports and flags
// regressions; the comparison machinery lives in internal/obsdiff,
// shared with cmd/obsbundle's bundle-diff mode.
//
// Usage:
//
//	obsdiff [flags] base.json new.json
//
//	-tolerance 0.15   relative slack: a cost metric may grow by up to
//	                  this fraction before it counts as a regression
//	-span-floor 1ms   spans whose base total is below this duration are
//	                  reported but never fail the gate (noise floor)
//	-json             emit the diff as machine-readable JSON instead of
//	                  the text table
//	-all              print every row, not just changed/regressed ones
//
// Exit status: 0 when no regression, 1 when any comparison exceeded the
// tolerance, 2 on usage or I/O errors.
package main

import (
	"os"

	"subsim/internal/obsdiff"
)

func main() {
	os.Exit(obsdiff.Run(os.Args[1:], os.Stdout))
}
