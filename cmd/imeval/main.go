// Command imeval evaluates the expected influence of a given seed set on
// a graph, by forward Monte-Carlo simulation and by an RR-set influence
// oracle with a certified confidence interval. It can also produce the
// seed set itself from one of the guarantee-free heuristics, making it a
// quick quality-floor tool:
//
//	imeval -graph g.bin -seeds 12,88,4093
//	imeval -graph g.bin -heuristic degreediscount -k 100
//
// Flags:
//
//	-graph     input graph path (from graphgen; text or .bin)
//	-seeds     comma-separated node ids to evaluate
//	-seedfile  file with one node id per line (alternative to -seeds)
//	-heuristic degree | singlediscount | degreediscount | pagerank | onehop | core
//	-k         seed count when -heuristic is used
//	-mc        forward simulations (default 10000; 0 = skip)
//	-rr        RR sets backing the oracle (default 100000; 0 = skip)
//	-delta     confidence parameter of the oracle interval (default 0.01)
//	-lt        evaluate under the Linear Threshold model
//	-seed      RNG seed
package main

import (
	"flag"
	"fmt"
	"os"

	"subsim"
	"subsim/internal/seedio"
)

func main() {
	graphPath := flag.String("graph", "", "input graph path")
	seedList := flag.String("seeds", "", "comma-separated seed node ids")
	seedFile := flag.String("seedfile", "", "file with one seed id per line")
	heuristic := flag.String("heuristic", "", "select seeds with a heuristic instead")
	k := flag.Int("k", 50, "seed count for -heuristic")
	mc := flag.Int("mc", 10000, "forward simulations (0 = skip)")
	rr := flag.Int64("rr", 100000, "oracle RR sets (0 = skip)")
	delta := flag.Float64("delta", 0.01, "oracle interval confidence parameter")
	lt := flag.Bool("lt", false, "evaluate under the Linear Threshold model")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "imeval: -graph is required")
		os.Exit(2)
	}
	g, err := subsim.LoadGraph(*graphPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imeval: %v\n", err)
		os.Exit(1)
	}
	if *lt {
		g.AssignLT()
	}

	var seeds []int32
	switch {
	case *heuristic != "":
		seeds, err = subsim.SelectHeuristic(g, subsim.Heuristic(*heuristic), *k)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imeval: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("heuristic %s selected %d seeds\n", *heuristic, len(seeds))
	case *seedFile != "":
		seeds, err = seedio.ReadFile(*seedFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imeval: %v\n", err)
			os.Exit(1)
		}
	case *seedList != "":
		seeds, err = seedio.ParseList(*seedList)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imeval: %v\n", err)
			os.Exit(2)
		}
	default:
		fmt.Fprintln(os.Stderr, "imeval: provide -seeds, -seedfile or -heuristic")
		os.Exit(2)
	}
	if err := seedio.Validate(seeds, g.N()); err != nil {
		fmt.Fprintf(os.Stderr, "imeval: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("graph: n=%d m=%d model=%s\n", g.N(), g.M(), g.Model())
	fmt.Printf("seeds: %d nodes\n", len(seeds))

	model := subsim.IC
	genKind := subsim.GenSubsim
	if *lt {
		model = subsim.LT
		genKind = subsim.GenLT
	}
	if *mc > 0 {
		spread := subsim.EstimateInfluence(g, seeds, *mc, model, *seed)
		fmt.Printf("forward MC (%d samples): %.1f (%.2f%% of graph)\n",
			*mc, spread, 100*spread/float64(g.N()))
	}
	if *rr > 0 {
		o, err := subsim.NewInfluenceOracle(subsim.NewRRGenerator(g, genKind), *rr, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imeval: %v\n", err)
			os.Exit(1)
		}
		lo, hi := o.Interval(seeds, *delta)
		fmt.Printf("RR oracle (%d sets): estimate %.1f, %.0f%%-interval [%.1f, %.1f]\n",
			*rr, o.Estimate(seeds), 100*(1-*delta), lo, hi)
	}
}
