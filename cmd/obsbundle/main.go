// obsbundle inspects the diagnostic bundles written by the flight
// recorder (internal/obs/flight): crash dumps from panics, stall
// watchdog firings, SIGUSR1/SIGQUIT, or GET /debug/bundle.
//
// Usage:
//
//	obsbundle [flags] <bundle-dir>             summarize one bundle
//	obsbundle [flags] <base-bundle> <new-dir>  diff the two bundles' run
//	                                           reports via the obsdiff gate
//
// Summary mode prints the manifest (tool, reason, creation time, file
// sizes and per-artifact errors), the journal tail with per-kind event
// counts, the runtime-metrics history ranges, and the report's top
// phases by total time. Diff mode loads report.json from each bundle
// (a bare report.json path also works) and applies the same comparison
// and exit codes as the obsdiff CLI: 0 clean, 1 regression, 2 error.
//
// Flags:
//
//	-events N       journal-tail rows in the summary (default 12, 0 = all)
//	-json           machine-readable summary / diff output
//	-tolerance F    diff: relative regression tolerance (default 0.15)
//	-span-floor D   diff: span totals below this base duration never fail
//	-all            diff: print unchanged rows too
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"subsim/internal/obs"
	"subsim/internal/obs/flight"
	"subsim/internal/obsdiff"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("obsbundle", flag.ContinueOnError)
	events := fs.Int("events", 12, "journal-tail rows in the summary (0 = all)")
	asJSON := fs.Bool("json", false, "emit machine-readable output")
	tolerance := fs.Float64("tolerance", 0.15, "diff: relative regression tolerance (0.15 = +15%)")
	spanFloor := fs.Duration("span-floor", time.Millisecond, "diff: span totals below this base duration never fail the gate")
	all := fs.Bool("all", false, "diff: print unchanged rows too")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch fs.NArg() {
	case 1:
		return summarize(out, fs.Arg(0), *events, *asJSON)
	case 2:
		return diff(out, fs.Arg(0), fs.Arg(1), obsdiff.Options{
			Tolerance:   *tolerance,
			SpanFloorNS: spanFloor.Nanoseconds(),
		}, *asJSON, *all)
	default:
		fmt.Fprintln(out, "usage: obsbundle [flags] <bundle-dir> [<new-bundle-dir>]")
		return 2
	}
}

// reportPath resolves a diff argument: a bundle directory means its
// report.json, a file path is taken as a report verbatim.
func reportPath(arg string) string {
	if fi, err := os.Stat(arg); err == nil && fi.IsDir() {
		return filepath.Join(arg, "report.json")
	}
	return arg
}

func diff(out io.Writer, baseArg, newArg string, opt obsdiff.Options, asJSON, all bool) int {
	base, err := obsdiff.LoadReport(reportPath(baseArg))
	if err != nil {
		fmt.Fprintf(out, "obsbundle: %v\n", err)
		return 2
	}
	next, err := obsdiff.LoadReport(reportPath(newArg))
	if err != nil {
		fmt.Fprintf(out, "obsbundle: %v\n", err)
		return 2
	}
	d := obsdiff.Compare(base, next, opt)
	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			fmt.Fprintf(out, "obsbundle: %v\n", err)
			return 2
		}
	} else {
		d.WriteText(out, all)
	}
	if d.Regressions > 0 {
		return 1
	}
	return 0
}

// summaryDoc is the -json summary shape: the manifest plus the decoded
// auxiliary views (absent sections are omitted, e.g. when an artifact
// failed to produce).
type summaryDoc struct {
	Path     string           `json:"path"`
	Manifest flight.Manifest  `json:"manifest"`
	Journal  *journalView     `json:"journal,omitempty"`
	History  *historyView     `json:"history,omitempty"`
	Phases   []obs.SpanAgg    `json:"phases,omitempty"`
}

type journalView struct {
	Written int64          `json:"written"`
	Dropped int64          `json:"dropped"`
	ByKind  map[string]int `json:"by_kind"`
	Tail    []flight.Event `json:"tail"`
}

type historyView struct {
	Samples int64           `json:"samples"`
	Dropped int64           `json:"dropped"`
	Series  []seriesSummary `json:"series"`
}

type seriesSummary struct {
	Name string  `json:"name"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Last float64 `json:"last"`
}

func summarize(out io.Writer, dir string, tailN int, asJSON bool) int {
	man, err := flight.ReadManifest(dir)
	if err != nil {
		fmt.Fprintf(out, "obsbundle: %v\n", err)
		return 2
	}
	doc := summaryDoc{Path: dir, Manifest: man}
	doc.Journal = loadJournal(filepath.Join(dir, "journal.json"), tailN)
	doc.History = loadHistory(filepath.Join(dir, "history.json"))
	doc.Phases = loadPhases(filepath.Join(dir, "report.json"))

	if asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(out, "obsbundle: %v\n", err)
			return 2
		}
		return 0
	}

	fmt.Fprintf(out, "bundle   %s\n", dir)
	if man.Tool != "" {
		fmt.Fprintf(out, "tool     %s\n", man.Tool)
	}
	fmt.Fprintf(out, "reason   %s\n", man.Reason)
	fmt.Fprintf(out, "created  %s\n", time.Unix(0, man.CreatedNS).UTC().Format(time.RFC3339Nano))
	fmt.Fprintf(out, "\nfiles (%d):\n", len(man.Files))
	for _, f := range man.Files {
		if f.Error != "" {
			fmt.Fprintf(out, "  %-16s ERROR: %s\n", f.Name, f.Error)
		} else {
			fmt.Fprintf(out, "  %-16s %8d bytes\n", f.Name, f.Bytes)
		}
	}
	if j := doc.Journal; j != nil {
		fmt.Fprintf(out, "\njournal: %d events written, %d dropped\n", j.Written, j.Dropped)
		for _, kind := range sortedKeys(j.ByKind) {
			fmt.Fprintf(out, "  %-16s %6d\n", kind, j.ByKind[kind])
		}
		if len(j.Tail) > 0 {
			fmt.Fprintf(out, "journal tail (%d):\n", len(j.Tail))
			for _, e := range j.Tail {
				fmt.Fprintf(out, "  %s\n", formatEvent(e))
			}
		}
	}
	if h := doc.History; h != nil {
		fmt.Fprintf(out, "\nruntime-metrics history: %d samples, %d dropped\n", h.Samples, h.Dropped)
		for _, s := range h.Series {
			fmt.Fprintf(out, "  %-24s min %14.0f  max %14.0f  last %14.0f\n", s.Name, s.Min, s.Max, s.Last)
		}
	}
	if len(doc.Phases) > 0 {
		fmt.Fprintf(out, "\ntop phases by total time:\n")
		for _, p := range doc.Phases {
			fmt.Fprintf(out, "  %-28s %12s  ×%d\n", p.Name, time.Duration(p.TotalNS), p.Count)
		}
	}
	return 0
}

// formatEvent renders one journal event for the summary tail. Journal
// times are offsets on the tracer's monotonic clock, so they print as
// +durations, not wall-clock times.
func formatEvent(e flight.Event) string {
	s := fmt.Sprintf("%-16s s%d  %-14s", "+"+time.Duration(e.TimeNS).String(), e.Stream, e.Kind)
	if e.Label != "" {
		s += " " + e.Label
	}
	if e.A != 0 || e.B != 0 {
		s += fmt.Sprintf(" a=%d b=%d", e.A, e.B)
	}
	if e.F1 != 0 || e.F2 != 0 || e.F3 != 0 {
		s += fmt.Sprintf(" f=(%g, %g, %g)", e.F1, e.F2, e.F3)
	}
	return s
}

// loadJournal decodes a bundle's journal.json into the summary view;
// nil when the artifact is missing or malformed (the manifest already
// records producer errors, so a broken artifact is not fatal here).
func loadJournal(path string, tailN int) *journalView {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var doc struct {
		Schema  string `json:"schema"`
		Version int    `json:"version"`
		flight.Snapshot
	}
	if err := json.Unmarshal(raw, &doc); err != nil || doc.Schema != flight.JournalSchema {
		return nil
	}
	v := &journalView{Written: doc.Written, Dropped: doc.Dropped, ByKind: map[string]int{}}
	for _, e := range doc.Events {
		v.ByKind[e.Kind.String()]++
	}
	v.Tail = doc.Events
	if tailN > 0 && len(v.Tail) > tailN {
		v.Tail = v.Tail[len(v.Tail)-tailN:]
	}
	return v
}

// loadHistory decodes a bundle's history.json into per-series ranges.
func loadHistory(path string) *historyView {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var doc struct {
		Schema  string `json:"schema"`
		Version int    `json:"version"`
		flight.HistorySnapshot
	}
	if err := json.Unmarshal(raw, &doc); err != nil || doc.Schema != flight.HistorySchema {
		return nil
	}
	v := &historyView{Samples: doc.Written, Dropped: doc.Dropped}
	for i, name := range doc.Series {
		s := seriesSummary{Name: name}
		for n, sample := range doc.Samples {
			if i >= len(sample.Values) {
				continue
			}
			val := sample.Values[i]
			if n == 0 || val < s.Min {
				s.Min = val
			}
			if n == 0 || val > s.Max {
				s.Max = val
			}
			s.Last = val
		}
		v.Series = append(v.Series, s)
	}
	return v
}

// loadPhases reads a bundle's report.json and returns the aggregated
// span totals, largest first, capped at the top eight.
func loadPhases(path string) []obs.SpanAgg {
	r, err := obsdiff.LoadReport(path)
	if err != nil {
		return nil
	}
	agg := r.AggregateSpans()
	sort.Slice(agg, func(i, j int) bool { return agg[i].TotalNS > agg[j].TotalNS })
	if len(agg) > 8 {
		agg = agg[:8]
	}
	return agg
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
