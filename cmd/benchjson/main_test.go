package main

import (
	"io"
	"regexp"
	"strings"
	"testing"
)

func mkRun(label string, ns map[string]float64) Run {
	bms := map[string]Metrics{}
	for name, v := range ns {
		bms[name] = Metrics{NsOp: v}
	}
	return Run{Label: label, Benchmarks: bms}
}

func TestCheckRegressionPasses(t *testing.T) {
	old := mkRun("arena-csr", map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200})
	cur := mkRun("current", map[string]float64{"BenchmarkA": 110, "BenchmarkB": 180})
	if err := checkRegression(io.Discard, old, cur, 15); err != nil {
		t.Fatalf("10%% slower within 15%% tolerance should pass: %v", err)
	}
}

func TestCheckRegressionFails(t *testing.T) {
	old := mkRun("arena-csr", map[string]float64{"BenchmarkA": 100, "BenchmarkB": 200})
	cur := mkRun("current", map[string]float64{"BenchmarkA": 140, "BenchmarkB": 200})
	var buf strings.Builder
	err := checkRegression(&buf, old, cur, 15)
	if err == nil {
		t.Fatal("40% regression must fail the check")
	}
	if !strings.Contains(buf.String(), "REGRESSION A") {
		t.Errorf("expected a REGRESSION line naming A, got %q", buf.String())
	}
}

func TestCheckRegressionNoCommon(t *testing.T) {
	old := mkRun("arena-csr", map[string]float64{"BenchmarkA": 100})
	cur := mkRun("current", map[string]float64{"BenchmarkZ": 100})
	if err := checkRegression(io.Discard, old, cur, 15); err == nil {
		t.Fatal("a check with no common benchmarks must fail, not silently pass")
	}
}

func TestFilterRunRestrictsCheck(t *testing.T) {
	re := mustCompile(t, "_W1$")
	old := mkRun("arena-csr", map[string]float64{
		"BenchmarkFill_W1": 100, "BenchmarkFill_W8": 100,
	})
	cur := mkRun("current", map[string]float64{
		"BenchmarkFill_W1": 105, "BenchmarkFill_W8": 300, // W8 regressed hard
	})
	fOld, fCur := filterRun(old, re), filterRun(cur, re)
	if len(fCur.Benchmarks) != 1 {
		t.Fatalf("filter kept %d benchmarks, want 1", len(fCur.Benchmarks))
	}
	if err := checkRegression(io.Discard, fOld, fCur, 15); err != nil {
		t.Fatalf("filtered check should ignore the W8 regression: %v", err)
	}
	if err := checkRegression(io.Discard, old, cur, 15); err == nil {
		t.Fatal("unfiltered check must still catch the W8 regression")
	}
}

func mustCompile(t *testing.T, expr string) *regexp.Regexp {
	t.Helper()
	re, err := regexp.Compile(expr)
	if err != nil {
		t.Fatal(err)
	}
	return re
}

func TestParseBenchKeepsFastest(t *testing.T) {
	in := strings.NewReader(`
goos: linux
BenchmarkX-8   100   500 ns/op   32 B/op   2 allocs/op
BenchmarkX-8   120   450 ns/op   32 B/op   2 allocs/op
PASS
`)
	bms, err := parseBench(in)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := bms["BenchmarkX"]
	if !ok {
		t.Fatalf("missing BenchmarkX (GOMAXPROCS suffix should be stripped): %v", bms)
	}
	if m.NsOp != 450 {
		t.Errorf("fastest ns/op should win: got %v, want 450", m.NsOp)
	}
}
