// Command benchjson records `go test -bench` output as machine-readable
// JSON baselines and compares recorded runs, so performance numbers live
// in the repository next to the code they describe.
//
// Usage:
//
//	benchjson -file BENCH_rrset.json -label arena-csr [bench_output.txt]
//	    Parse benchmark text (a file argument or stdin) and record it
//	    under the given label, replacing any run with the same label.
//
//	benchjson -file BENCH_rrset.json -compare pre-arena,arena-csr
//	    Print a before/after table (ns/op, B/op, allocs/op with deltas)
//	    for two recorded runs.
//
//	benchjson -file BENCH_rrset.json -list
//	    List the recorded runs.
//
//	benchjson -file BENCH_rrset.json -check arena-csr,current
//	    Regression gate: compare the runs like -compare, but exit with a
//	    non-zero status if any common benchmark's ns/op in the second run
//	    is more than -tolerance percent (default 15) slower than in the
//	    first. Intended for CI / make targets.
//
//	benchjson ... -check old,new -filter '_W1$'
//	    Restrict -compare/-check to benchmark names matching the regexp.
//	    Lets a gate pin only the machine-independent benchmarks (e.g. the
//	    serial _W1 variants) while worker-scaling variants, whose numbers
//	    depend on the recording host's core count, stay informational.
//
// When a benchmark appears multiple times (e.g. -count 3), the fastest
// ns/op line is kept, following the usual "best observed time" bench
// convention. The trailing -N GOMAXPROCS suffix is stripped from names
// so baselines recorded on machines with different core counts compare.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Metrics is one benchmark's measurements: the three standard go-test
// columns plus any custom b.ReportMetric units (e.g. sets/op).
type Metrics struct {
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op,omitempty"`
	AllocsOp float64            `json:"allocs_op,omitempty"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

// Run is one recorded benchmark pass.
type Run struct {
	Label     string `json:"label"`
	Recorded  string `json:"recorded"`
	GoVersion string `json:"go_version"`
	// Caveat flags a run whose numbers need a health warning — e.g. W>1
	// variants recorded on a single-core host, which measure partitioning
	// overhead rather than parallel speedup. A struct field (not a free
	// comment in the JSON) so save() round-trips it instead of dropping it.
	Caveat     string             `json:"caveat,omitempty"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// File is the on-disk schema of BENCH_*.json.
type File struct {
	Schema int   `json:"schema"`
	Runs   []Run `json:"runs"`
}

func main() {
	var (
		path    = flag.String("file", "BENCH_rrset.json", "JSON baseline file to read/write")
		label   = flag.String("label", "", "record parsed benchmarks under this label")
		caveat  = flag.String("caveat", "", "health warning recorded alongside -label (e.g. single-core host)")
		compare = flag.String("compare", "", "compare two recorded labels, \"old,new\"")
		check   = flag.String("check", "", "like -compare, but fail when \"new\" regresses vs \"old\"")
		tol     = flag.Float64("tolerance", 15, "allowed ns/op regression percentage for -check")
		filter  = flag.String("filter", "", "regexp restricting -compare/-check to matching benchmark names")
		list    = flag.Bool("list", false, "list recorded runs")
	)
	flag.Parse()
	if err := run(*path, *label, *caveat, *compare, *check, *tol, *filter, *list, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(path, label, caveat, compare, check string, tol float64, filter string, list bool, args []string) error {
	f, err := load(path)
	if err != nil {
		return err
	}
	switch {
	case list:
		for _, r := range f.Runs {
			fmt.Printf("%-20s %s  (%d benchmarks, %s)\n", r.Label, r.Recorded, len(r.Benchmarks), r.GoVersion)
		}
		return nil
	case compare != "" || check != "":
		spec, flagName := compare, "-compare"
		if check != "" {
			spec, flagName = check, "-check"
		}
		labels := strings.SplitN(spec, ",", 2)
		if len(labels) != 2 {
			return fmt.Errorf("%s wants \"old,new\", got %q", flagName, spec)
		}
		old, err := f.find(labels[0])
		if err != nil {
			return err
		}
		cur, err := f.find(labels[1])
		if err != nil {
			return err
		}
		if filter != "" {
			re, err := regexp.Compile(filter)
			if err != nil {
				return fmt.Errorf("-filter: %w", err)
			}
			old, cur = filterRun(old, re), filterRun(cur, re)
		}
		printComparison(os.Stdout, old, cur)
		if check != "" {
			return checkRegression(os.Stdout, old, cur, tol)
		}
		return nil
	case label != "":
		var in io.Reader = os.Stdin
		if len(args) > 0 {
			fh, err := os.Open(args[0])
			if err != nil {
				return err
			}
			defer fh.Close()
			in = fh
		}
		bms, err := parseBench(in)
		if err != nil {
			return err
		}
		if len(bms) == 0 {
			return fmt.Errorf("no benchmark lines found in input")
		}
		f.put(Run{
			Label:      label,
			Recorded:   time.Now().UTC().Format(time.RFC3339),
			GoVersion:  runtime.Version(),
			Caveat:     caveat,
			Benchmarks: bms,
		})
		if err := save(path, f); err != nil {
			return err
		}
		fmt.Printf("recorded %d benchmarks as %q in %s\n", len(bms), label, path)
		return nil
	default:
		return fmt.Errorf("one of -label, -compare or -list is required")
	}
}

func load(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &File{Schema: 1}, nil
	}
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func save(path string, f *File) error {
	f.Schema = 1
	out, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func (f *File) find(label string) (Run, error) {
	for _, r := range f.Runs {
		if r.Label == label {
			return r, nil
		}
	}
	return Run{}, fmt.Errorf("no run labelled %q (use -list)", label)
}

// filterRun returns a copy of the run keeping only the benchmarks whose
// name matches re.
func filterRun(r Run, re *regexp.Regexp) Run {
	kept := make(map[string]Metrics, len(r.Benchmarks))
	for name, m := range r.Benchmarks {
		if re.MatchString(name) {
			kept[name] = m
		}
	}
	r.Benchmarks = kept
	return r
}

// put replaces the run with the same label or appends a new one.
func (f *File) put(r Run) {
	for i := range f.Runs {
		if f.Runs[i].Label == r.Label {
			f.Runs[i] = r
			return
		}
	}
	f.Runs = append(f.Runs, r)
}

// parseBench extracts benchmark results from go-test output. Lines look
// like:
//
//	BenchmarkFillIndex_Subsim_W1-8  234  5060000 ns/op  123 B/op  7 allocs/op  2000 sets/op
//
// Non-benchmark lines are ignored. The fastest ns/op wins for repeated
// names.
func parseBench(r io.Reader) (map[string]Metrics, error) {
	out := map[string]Metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip -GOMAXPROCS
			}
		}
		var m Metrics
		seen := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.NsOp = val
				seen = true
			case "B/op":
				m.BOp = val
			case "allocs/op":
				m.AllocsOp = val
			default:
				if m.Extra == nil {
					m.Extra = map[string]float64{}
				}
				m.Extra[fields[i+1]] = val
			}
		}
		if !seen {
			continue
		}
		if prev, ok := out[name]; !ok || m.NsOp < prev.NsOp {
			out[name] = m
		}
	}
	return out, sc.Err()
}

func printComparison(w io.Writer, old, cur Run) {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		if _, ok := old.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-40s %12s %12s %8s %12s %12s %8s %12s %12s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δ",
		"old B/op", "new B/op", "Δ", "old allocs", "new allocs", "Δ")
	for _, name := range names {
		o, n := old.Benchmarks[name], cur.Benchmarks[name]
		fmt.Fprintf(w, "%-40s %12.0f %12.0f %8s %12.0f %12.0f %8s %12.0f %12.0f %8s\n",
			strings.TrimPrefix(name, "Benchmark"),
			o.NsOp, n.NsOp, delta(o.NsOp, n.NsOp),
			o.BOp, n.BOp, delta(o.BOp, n.BOp),
			o.AllocsOp, n.AllocsOp, delta(o.AllocsOp, n.AllocsOp))
	}
	if len(names) == 0 {
		fmt.Fprintf(w, "(no common benchmarks between %q and %q)\n", old.Label, cur.Label)
	}
	printExtraMetrics(w, names, old, cur)
}

// printExtraMetrics lists custom b.ReportMetric units recorded in either
// run (e.g. the sketch-memory "index-bytes" column of the sketch-cover
// label) as per-unit comparison rows under the main table.
func printExtraMetrics(w io.Writer, names []string, old, cur Run) {
	units := map[string]bool{}
	for _, name := range names {
		for unit := range old.Benchmarks[name].Extra {
			units[unit] = true
		}
		for unit := range cur.Benchmarks[name].Extra {
			units[unit] = true
		}
	}
	if len(units) == 0 {
		return
	}
	ordered := make([]string, 0, len(units))
	for unit := range units {
		ordered = append(ordered, unit)
	}
	sort.Strings(ordered)
	for _, unit := range ordered {
		fmt.Fprintf(w, "\n%-40s %14s %14s %8s\n", "benchmark", "old "+unit, "new "+unit, "Δ")
		for _, name := range names {
			o, okO := old.Benchmarks[name].Extra[unit]
			n, okN := cur.Benchmarks[name].Extra[unit]
			if !okO && !okN {
				continue
			}
			fmt.Fprintf(w, "%-40s %14.0f %14.0f %8s\n",
				strings.TrimPrefix(name, "Benchmark"), o, n, delta(o, n))
		}
	}
}

// checkRegression returns an error (non-zero exit) when any benchmark
// present in both runs got more than tol percent slower by ns/op. A run
// pair with no common benchmarks is also an error: a gate that compares
// nothing would silently pass forever.
func checkRegression(w io.Writer, old, cur Run, tol float64) error {
	common, slower := 0, []string{}
	for name, n := range cur.Benchmarks {
		o, ok := old.Benchmarks[name]
		if !ok || o.NsOp == 0 {
			continue
		}
		common++
		if pct := (n.NsOp - o.NsOp) / o.NsOp * 100; pct > tol {
			slower = append(slower, fmt.Sprintf("%s: %+.1f%% (%.0f -> %.0f ns/op)",
				strings.TrimPrefix(name, "Benchmark"), pct, o.NsOp, n.NsOp))
		}
	}
	if common == 0 {
		return fmt.Errorf("no common benchmarks between %q and %q", old.Label, cur.Label)
	}
	if len(slower) > 0 {
		sort.Strings(slower)
		for _, s := range slower {
			fmt.Fprintln(w, "REGRESSION", s)
		}
		return fmt.Errorf("%d of %d benchmarks regressed more than %.0f%% (%q vs %q)",
			len(slower), common, tol, cur.Label, old.Label)
	}
	fmt.Fprintf(w, "check passed: %d benchmarks within %.0f%% of %q\n", common, tol, old.Label)
	return nil
}

// delta formats the relative change from before to after ("-37.5%").
func delta(before, after float64) string {
	if before == 0 {
		if after == 0 {
			return "0%"
		}
		return "+inf"
	}
	return fmt.Sprintf("%+.1f%%", (after-before)/before*100)
}
