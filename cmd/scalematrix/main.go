// Command scalematrix sweeps the RR pipeline over a declarative
// workers × generator × graph × trials matrix and reports, per phase
// (generate, splice, index-build, select), the speedup and parallel
// efficiency relative to W=1 plus a least-squares Amdahl serial-fraction
// fit — turning "does the parallel pipeline actually scale?" into a
// measured, regression-gated artifact instead of a hope.
//
// Usage:
//
//	scalematrix -graphs pa:20000x8 -gens subsim,vanilla -workers 1,2,4,8
//
// Flags:
//
//	-graphs      comma-separated graph specs type:NxD (pa = preferential
//	             attachment, er = Erdős–Rényi with m = N·D edges); WC
//	             weights
//	-gens        comma-separated generators: subsim, vanilla, bucketed
//	-estimators  comma-separated coverage estimator backends: exact (CSR
//	             inverted index), hll (register-array sketch), sharded
//	             (shard-parallel exact engine: zero-splice fill, every
//	             CELF round fanned out; byte-identical results to exact)
//	-workers     comma-separated worker counts (must include 1, the
//	             speedup baseline)
//	-trials      trials per cell; the median of each phase wins
//	-sets        RR sets generated per trial
//	-rounds      FillIndex/build/select rounds the sets are split over
//	             (exercises the delta CSR path like the doubling loops do)
//	-k           seeds selected per round
//	-seed        RNG seed (identical across cells; the worker-
//	             independence invariant is asserted on the seed sets)
//	-json        write the full matrix result as JSON (schema
//	             subsim.scalematrix) to this file
//	-bench-file  record bench-style rows (speedup/efficiency extras and
//	             Amdahl fits) into this benchjson file
//	-bench-label label for the -bench-file run (default scale-matrix)
//	-report      write a schema-versioned obs run report (one span per
//	             cell) to this file, obsdiff-compatible
//	-trace       write the last cell's execution timeline (its final
//	             trial, the highest worker count of the sweep) as a
//	             Chrome trace-event JSON loadable in Perfetto — the CI
//	             artifact that shows the fanned-out CELF rounds
//
// Every cell runs with a fresh tracer + execution timeline
// (internal/obs/timeline), so the per-phase wall times are backed by the
// same instrumentation the live telemetry plane serves, and the JSON
// carries each cell's timeline utilization summary. When the sweep asks
// for more workers than GOMAXPROCS the tool prints a loud warning and
// tags every emitted artifact with a caveat: oversubscribed timings
// measure partitioning overhead, not parallel speedup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"subsim/internal/coverage"
	"subsim/internal/graph"
	"subsim/internal/im"
	"subsim/internal/obs"
	"subsim/internal/obs/timeline"
	"subsim/internal/rng"
	"subsim/internal/rrset"
)

// phaseNames orders the report rows; "total" is the sum of the others.
var phaseNames = []string{"generate", "splice", "index-build", "select", "total"}

// graphSpec is one parsed -graphs entry.
type graphSpec struct {
	kind string // "pa" or "er"
	n    int
	deg  int
}

func (s graphSpec) String() string { return fmt.Sprintf("%s:%dx%d", s.kind, s.n, s.deg) }

// benchSafe renders the spec as a benchmark-name fragment.
func (s graphSpec) benchSafe() string { return fmt.Sprintf("%s%dx%d", s.kind, s.n, s.deg) }

func parseGraphSpec(in string) (graphSpec, error) {
	kind, rest, ok := strings.Cut(in, ":")
	if !ok {
		return graphSpec{}, fmt.Errorf("graph spec %q: want type:NxD", in)
	}
	if kind != "pa" && kind != "er" {
		return graphSpec{}, fmt.Errorf("graph spec %q: unknown type %q (pa, er)", in, kind)
	}
	ns, ds, ok := strings.Cut(rest, "x")
	if !ok {
		return graphSpec{}, fmt.Errorf("graph spec %q: want type:NxD", in)
	}
	n, err := strconv.Atoi(ns)
	if err != nil || n < 2 {
		return graphSpec{}, fmt.Errorf("graph spec %q: bad node count", in)
	}
	d, err := strconv.Atoi(ds)
	if err != nil || d < 1 {
		return graphSpec{}, fmt.Errorf("graph spec %q: bad degree", in)
	}
	return graphSpec{kind: kind, n: n, deg: d}, nil
}

func buildGraph(spec graphSpec, seed uint64) (*graph.Graph, error) {
	r := rng.New(seed)
	var g *graph.Graph
	var err error
	switch spec.kind {
	case "pa":
		g, err = graph.GenPreferentialAttachment(spec.n, spec.deg, false, r)
	case "er":
		g, err = graph.GenErdosRenyi(spec.n, int64(spec.n)*int64(spec.deg), r)
	default:
		return nil, fmt.Errorf("unknown graph kind %q", spec.kind)
	}
	if err != nil {
		return nil, err
	}
	g.AssignWC()
	return g, nil
}

func newGenerator(name string, g *graph.Graph) (rrset.Generator, error) {
	switch name {
	case "subsim":
		return rrset.NewSubsim(g), nil
	case "vanilla":
		return rrset.NewVanilla(g), nil
	case "bucketed":
		return rrset.NewSubsimBucketed(g, true), nil
	default:
		return nil, fmt.Errorf("unknown generator %q (subsim, vanilla, bucketed)", name)
	}
}

// cell is one matrix point: the median per-phase wall times of running
// the full pipeline (generate → splice → delta CSR build → select) at
// one worker count.
type cell struct {
	Graph     string         `json:"graph"`
	Gen       string         `json:"gen"`
	Estimator string         `json:"estimator"`
	Workers   int            `json:"workers"`
	Trials  int              `json:"trials"`
	PhaseNS map[string]int64 `json:"phase_ns"`
	// Timeline is the last trial's execution-timeline digest: records
	// per phase, busy/covered/serial-gap ns, per-worker skew.
	Timeline *timeline.Summary `json:"timeline,omitempty"`
	// seeds fingerprints trial 0's selection for the worker-independence
	// assertion (not exported to JSON; the check either passes or aborts).
	seeds []int32
}

// point is one (W, T) sample of a phase's scaling curve.
type point struct {
	Workers    int     `json:"workers"`
	NS         int64   `json:"ns"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
}

// curve is one phase's scaling behaviour across the worker sweep.
type curve struct {
	Graph     string `json:"graph"`
	Gen       string `json:"gen"`
	Estimator string `json:"estimator"`
	Phase     string `json:"phase"`
	T1NS   int64   `json:"t1_ns"`
	Points []point `json:"points"`
	// AmdahlSerialFrac is the least-squares serial fraction s of
	// T_W = T_1·(s + (1-s)/W) fitted over the W>1 points, clamped to
	// [0,1]; -1 when the sweep has no W>1 point to fit.
	AmdahlSerialFrac float64 `json:"amdahl_serial_frac"`
}

// resultDoc is the -json document.
type resultDoc struct {
	Schema        string  `json:"schema"`
	SchemaVersion int     `json:"schema_version"`
	Recorded      string  `json:"recorded"`
	GoVersion     string  `json:"go_version"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Caveat        string  `json:"caveat,omitempty"`
	Sets          int     `json:"sets"`
	Rounds        int     `json:"rounds"`
	K             int     `json:"k"`
	Trials        int     `json:"trials"`
	Cells         []cell  `json:"cells"`
	Curves        []curve `json:"curves"`
}

func main() {
	var (
		graphsFlag  = flag.String("graphs", "pa:20000x8", "comma-separated graph specs type:NxD (pa, er)")
		gensFlag    = flag.String("gens", "subsim", "comma-separated generators: subsim, vanilla, bucketed")
		estFlag     = flag.String("estimators", "exact", "comma-separated coverage estimator backends: exact, hll, sharded")
		workersFlag = flag.String("workers", "1,2,4,8", "comma-separated worker counts (must include 1)")
		trials      = flag.Int("trials", 3, "trials per cell (median wins)")
		sets        = flag.Int("sets", 20000, "RR sets generated per trial")
		rounds      = flag.Int("rounds", 4, "FillIndex/build/select rounds per trial")
		k           = flag.Int("k", 50, "seeds selected per round")
		seed        = flag.Uint64("seed", 2020, "RNG seed")
		jsonPath    = flag.String("json", "", "write the matrix result JSON to this file")
		benchFile   = flag.String("bench-file", "", "record bench-style rows into this benchjson file")
		benchLabel  = flag.String("bench-label", "scale-matrix", "label for the -bench-file run")
		reportPath  = flag.String("report", "", "write an obs run report (one span per cell) to this file")
		tracePath   = flag.String("trace", "", "write the last cell's timeline as Chrome trace-event JSON (Perfetto)")
		flightDir   = flag.String("flight-dir", ".", "directory for diagnostic *.bundle directories (-flight-dir '' disables the flight recorder)")
		stallWindow = flag.Duration("stall-window", 0, "stall-watchdog window (0 = watchdog off)")
	)
	flag.Parse()
	if err := run(*graphsFlag, *gensFlag, *estFlag, *workersFlag, *trials, *sets, *rounds, *k, *seed,
		*jsonPath, *benchFile, *benchLabel, *reportPath, *tracePath, *flightDir, *stallWindow); err != nil {
		fmt.Fprintln(os.Stderr, "scalematrix:", err)
		os.Exit(1)
	}
}

func run(graphsFlag, gensFlag, estFlag, workersFlag string, trials, sets, rounds, k int, seed uint64,
	jsonPath, benchFile, benchLabel, reportPath, tracePath, flightDir string, stallWindow time.Duration) error {
	var specs []graphSpec
	for _, s := range strings.Split(graphsFlag, ",") {
		spec, err := parseGraphSpec(strings.TrimSpace(s))
		if err != nil {
			return err
		}
		specs = append(specs, spec)
	}
	gens := strings.Split(gensFlag, ",")
	for i := range gens {
		gens[i] = strings.TrimSpace(gens[i])
	}
	var estimators []coverage.EstimatorKind
	for _, s := range strings.Split(estFlag, ",") {
		kind, err := coverage.ParseEstimator(strings.TrimSpace(s))
		if err != nil {
			return err
		}
		estimators = append(estimators, kind)
	}
	var workerSweep []int
	for _, s := range strings.Split(workersFlag, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || w < 1 {
			return fmt.Errorf("bad -workers entry %q", s)
		}
		workerSweep = append(workerSweep, w)
	}
	sort.Ints(workerSweep)
	if workerSweep[0] != 1 {
		return fmt.Errorf("-workers must include 1 (the speedup baseline)")
	}
	if trials < 1 || sets < rounds || rounds < 1 || k < 1 {
		return fmt.Errorf("bad matrix shape: trials=%d sets=%d rounds=%d k=%d", trials, sets, rounds, k)
	}

	procs := runtime.GOMAXPROCS(0)
	caveat := ""
	if maxW := workerSweep[len(workerSweep)-1]; maxW > procs {
		caveat = fmt.Sprintf("recorded with GOMAXPROCS=%d < max workers=%d: W>%d rows measure goroutine-partitioning overhead on shared cores, NOT parallel speedup", procs, maxW, procs)
		fmt.Fprintf(os.Stderr,
			"scalematrix: WARNING: sweep asks for %d workers but GOMAXPROCS=%d\n"+
				"scalematrix: WARNING: oversubscribed rows measure partitioning overhead, NOT speedup\n"+
				"scalematrix: WARNING: all emitted artifacts are tagged with this caveat\n",
			maxW, procs)
	}

	matrixTr := obs.NewTracer()
	matrixTr.SetMeta("tool", "scalematrix")
	matrixTr.SetMeta("gomaxprocs", procs)
	matrixTr.SetMeta("workers", workersFlag)
	matrixTr.SetMeta("estimators", estFlag)
	if caveat != "" {
		matrixTr.SetMeta("caveat", caveat)
	}
	// Flight recorder on the matrix-level tracer: a sweep that panics or
	// stalls deep into the matrix leaves a bundle with the per-cell span
	// journal instead of a bare stack trace. Per-cell tracers stay fresh
	// (see runCell); only the session-level black box is global.
	if flightDir != "" {
		fl := matrixTr.EnableFlight(obs.FlightConfig{
			Dir:         flightDir,
			Tool:        "scalematrix",
			StallWindow: stallWindow,
			OnBundle: func(path, reason string, err error) {
				if err != nil {
					fmt.Fprintf(os.Stderr, "scalematrix: flight bundle (%s): %v\n", reason, err)
					return
				}
				fmt.Fprintf(os.Stderr, "scalematrix: flight bundle (%s) written to %s\n", reason, path)
			},
		})
		defer fl.Close()
		defer fl.CapturePanic()
		stopSignals := fl.InstallSignalHandlers()
		defer stopSignals()
	}

	doc := resultDoc{
		Schema:        "subsim.scalematrix",
		SchemaVersion: 1,
		Recorded:      time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOMAXPROCS:    procs,
		Caveat:        caveat,
		Sets:          sets,
		Rounds:        rounds,
		K:             k,
		Trials:        trials,
	}

	var traceSnap timeline.Snapshot
	for _, spec := range specs {
		g, err := buildGraph(spec, seed)
		if err != nil {
			return err
		}
		for _, genName := range gens {
			for _, estKind := range estimators {
				var baseline *cell
				for _, w := range workerSweep {
					span := matrixTr.Span(fmt.Sprintf("cell-%s-%s-%s-W%d", spec, genName, estKind, w))
					c, snap, err := runCell(g, spec, genName, estKind, w, trials, sets, rounds, k, seed)
					if err != nil {
						return err
					}
					traceSnap = snap
					span.SetInt("workers", int64(w)).SetInt("total_ns", c.PhaseNS["total"])
					span.End()
					if w == 1 {
						baseline = &c
					} else if baseline != nil && !equalSeeds(baseline.seeds, c.seeds) {
						return fmt.Errorf("worker-independence violated: %s/%s/%s W=%d selected different seeds than W=1",
							spec, genName, estKind, w)
					}
					doc.Cells = append(doc.Cells, c)
					fmt.Fprintf(os.Stderr, "scalematrix: %s %s %s W=%d done (total %s)\n",
						spec, genName, estKind, w, time.Duration(c.PhaseNS["total"]))
				}
				doc.Curves = append(doc.Curves, buildCurves(spec.String(), genName, estKind.String(),
					cellsFor(doc.Cells, spec.String(), genName, estKind.String()))...)
			}
		}
	}

	printMarkdown(os.Stdout, &doc)

	if jsonPath != "" {
		if err := writeJSONFile(jsonPath, doc); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scalematrix: wrote %s\n", jsonPath)
	}
	if benchFile != "" {
		if err := recordBench(benchFile, benchLabel, caveat, &doc); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scalematrix: recorded run %q in %s\n", benchLabel, benchFile)
	}
	if reportPath != "" {
		f, err := os.Create(reportPath)
		if err != nil {
			return err
		}
		if err := matrixTr.Report().WriteJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scalematrix: wrote report %s\n", reportPath)
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := timeline.WriteTrace(f, traceSnap, nil); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "scalematrix: wrote trace %s\n", tracePath)
	}
	return nil
}

// runCell executes trials full pipeline passes at one worker count and
// returns the median per-phase wall times plus the final trial's raw
// timeline snapshot (for -trace export). Every trial runs with a fresh
// tracer + timeline, so the cell's timeline digest reflects exactly one
// pipeline pass.
func runCell(g *graph.Graph, spec graphSpec, genName string, estKind coverage.EstimatorKind,
	workers, trials, sets, rounds, k int, seed uint64) (cell, timeline.Snapshot, error) {
	c := cell{
		Graph:     spec.String(),
		Gen:       genName,
		Estimator: estKind.String(),
		Workers:   workers,
		Trials:    trials,
		PhaseNS:   make(map[string]int64, len(phaseNames)),
	}
	samples := make(map[string][]int64, len(phaseNames))
	var lastSnap timeline.Snapshot
	for trial := 0; trial < trials; trial++ {
		tr := obs.NewTracer()
		tr.EnableTimeline(0)
		m := tr.Metrics()
		gen, err := newGenerator(genName, g)
		if err != nil {
			return cell{}, timeline.Snapshot{}, err
		}
		b := im.NewInstrumentedBatcher(gen, seed, workers, m)
		idx := im.NewEstimator(g.N(), nil, im.Options{Workers: workers, Estimator: estKind}, m)

		perRound := sets / rounds
		var genNS, buildNS, selNS int64
		var seeds []int32
		for r := 0; r < rounds; r++ {
			cnt := perRound
			if r == rounds-1 {
				cnt = sets - perRound*(rounds-1)
			}
			t0 := time.Now()
			b.Fill(idx, cnt, nil)
			genNS += time.Since(t0).Nanoseconds()
			t0 = time.Now()
			idx.Degree(0) // forces the delta CSR rebuild
			buildNS += time.Since(t0).Nanoseconds()
			t0 = time.Now()
			res := idx.SelectSeeds(coverage.GreedyOptions{K: k})
			selNS += time.Since(t0).Nanoseconds()
			seeds = res.Seeds
		}
		// FillIndex wall time covers generation plus the splice; the
		// splice histogram carries the splice's own share.
		spliceNS := m.Splice.Sum()
		generateNS := genNS - spliceNS
		if generateNS < 0 {
			generateNS = 0
		}
		samples["generate"] = append(samples["generate"], generateNS)
		samples["splice"] = append(samples["splice"], spliceNS)
		samples["index-build"] = append(samples["index-build"], buildNS)
		samples["select"] = append(samples["select"], selNS)
		samples["total"] = append(samples["total"], genNS+buildNS+selNS)
		if trial == 0 {
			c.seeds = seeds
		}
		if trial == trials-1 {
			lastSnap = tr.Timeline().Snapshot()
			sum := timeline.Summarize(lastSnap)
			c.Timeline = &sum
		}
	}
	for _, name := range phaseNames {
		c.PhaseNS[name] = medianInt64(samples[name])
	}
	return c, lastSnap, nil
}

func equalSeeds(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func medianInt64(v []int64) int64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]int64(nil), v...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// cellsFor filters the accumulated cells down to one (graph, gen,
// estimator) triple, ascending by worker count.
func cellsFor(cells []cell, graphName, genName, estName string) []cell {
	var out []cell
	for _, c := range cells {
		if c.Graph == graphName && c.Gen == genName && c.Estimator == estName {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Workers < out[j].Workers })
	return out
}

// buildCurves turns one (graph, gen) worker sweep into per-phase scaling
// curves with speedup, efficiency and the Amdahl fit.
func buildCurves(graphName, genName, estName string, cells []cell) []curve {
	if len(cells) == 0 {
		return nil
	}
	var curves []curve
	for _, phase := range phaseNames {
		cv := curve{Graph: graphName, Gen: genName, Estimator: estName, Phase: phase, AmdahlSerialFrac: -1}
		t1 := cells[0].PhaseNS[phase] // cells ascend by W and include W=1
		cv.T1NS = t1
		for _, c := range cells {
			p := point{Workers: c.Workers, NS: c.PhaseNS[phase]}
			if t1 > 0 && p.NS > 0 {
				p.Speedup = float64(t1) / float64(p.NS)
				p.Efficiency = p.Speedup / float64(c.Workers)
			}
			cv.Points = append(cv.Points, p)
		}
		cv.AmdahlSerialFrac = amdahlFit(cv.Points, t1)
		curves = append(curves, cv)
	}
	return curves
}

// amdahlFit estimates the serial fraction s of Amdahl's law
// T_W = T_1·(s + (1-s)/W) by least squares: with x_W = 1 - 1/W and
// y_W = T_W/T_1 - 1/W the model is y = s·x, so s = Σxy / Σx² over the
// W>1 points. Clamped to [0,1]; -1 when no W>1 point (or T_1 = 0)
// leaves nothing to fit.
func amdahlFit(points []point, t1 int64) float64 {
	if t1 <= 0 {
		return -1
	}
	var sxx, sxy float64
	n := 0
	for _, p := range points {
		if p.Workers <= 1 {
			continue
		}
		x := 1 - 1/float64(p.Workers)
		y := float64(p.NS)/float64(t1) - 1/float64(p.Workers)
		sxx += x * x
		sxy += x * y
		n++
	}
	if n == 0 || sxx == 0 {
		return -1
	}
	s := sxy / sxx
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	return s
}

// printMarkdown renders the per-phase scaling table, one row per
// (graph, gen, phase).
func printMarkdown(w *os.File, doc *resultDoc) {
	fmt.Fprintf(w, "### Scaling matrix (GOMAXPROCS=%d, %d sets, %d rounds, k=%d, median of %d)\n\n",
		doc.GOMAXPROCS, doc.Sets, doc.Rounds, doc.K, doc.Trials)
	if doc.Caveat != "" {
		fmt.Fprintf(w, "> **Caveat:** %s\n\n", doc.Caveat)
	}
	// Header: worker columns from the first curve (all share the sweep).
	if len(doc.Curves) == 0 {
		fmt.Fprintln(w, "(empty matrix)")
		return
	}
	fmt.Fprint(w, "| graph | generator | estimator | phase | T(W=1) |")
	for _, p := range doc.Curves[0].Points {
		if p.Workers == 1 {
			continue
		}
		fmt.Fprintf(w, " W=%d speedup (eff) |", p.Workers)
	}
	fmt.Fprintln(w, " Amdahl s |")
	fmt.Fprint(w, "|---|---|---|---|---|")
	for _, p := range doc.Curves[0].Points {
		if p.Workers == 1 {
			continue
		}
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w, "---|")
	for _, cv := range doc.Curves {
		fmt.Fprintf(w, "| %s | %s | %s | %s | %s |", cv.Graph, cv.Gen, cv.Estimator, cv.Phase, time.Duration(cv.T1NS))
		for _, p := range cv.Points {
			if p.Workers == 1 {
				continue
			}
			fmt.Fprintf(w, " %.2fx (%.0f%%) |", p.Speedup, p.Efficiency*100)
		}
		if cv.AmdahlSerialFrac < 0 {
			fmt.Fprintln(w, " n/a |")
		} else {
			fmt.Fprintf(w, " %.3f |\n", cv.AmdahlSerialFrac)
		}
	}
}

func writeJSONFile(path string, v any) error {
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// --- benchjson recording -------------------------------------------------
//
// The structs mirror cmd/benchjson's on-disk schema (schema 1) so
// scalematrix can record straight into BENCH_rrset.json without shelling
// out; benchjson -list/-compare read the result as usual.

type benchMetrics struct {
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op,omitempty"`
	AllocsOp float64            `json:"allocs_op,omitempty"`
	Extra    map[string]float64 `json:"extra,omitempty"`
}

type benchRun struct {
	Label      string                  `json:"label"`
	Recorded   string                  `json:"recorded"`
	GoVersion  string                  `json:"go_version"`
	Caveat     string                  `json:"caveat,omitempty"`
	Benchmarks map[string]benchMetrics `json:"benchmarks"`
}

type benchJSONFile struct {
	Schema int        `json:"schema"`
	Runs   []benchRun `json:"runs"`
}

// benchName renders one matrix point as a benchmark row name, e.g.
// BenchmarkScaleMatrix_pa20000x8_subsim_generate_W4. Exact-backend rows
// keep the historic names so recorded baselines stay comparable; other
// estimators get their own name fragment.
func benchName(graphSafe, gen, est, phase string, workers int) string {
	phase = strings.ReplaceAll(phase, "-", "")
	if est != "" && est != "exact" {
		gen = gen + "_" + est
	}
	return fmt.Sprintf("BenchmarkScaleMatrix_%s_%s_%s_W%d", graphSafe, gen, phase, workers)
}

// recordBench writes the matrix into a benchjson file under label:
// one row per (graph, gen, phase, W) carrying ns plus speedup and
// efficiency extras, and one _Amdahl row per curve carrying the fitted
// serial fraction.
func recordBench(path, label, caveat string, doc *resultDoc) error {
	var f benchJSONFile
	raw, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		f.Schema = 1
	case err != nil:
		return err
	default:
		if err := json.Unmarshal(raw, &f); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}

	bms := make(map[string]benchMetrics)
	for _, cv := range doc.Curves {
		safe := strings.NewReplacer(":", "", "x", "x").Replace(cv.Graph)
		for _, p := range cv.Points {
			m := benchMetrics{NsOp: float64(p.NS)}
			if p.Workers > 1 {
				m.Extra = map[string]float64{
					"speedup":    p.Speedup,
					"efficiency": p.Efficiency,
				}
			}
			bms[benchName(safe, cv.Gen, cv.Estimator, cv.Phase, p.Workers)] = m
		}
		if cv.AmdahlSerialFrac >= 0 {
			bms[benchName(safe, cv.Gen, cv.Estimator, cv.Phase, 0)+"_Amdahl"] = benchMetrics{
				NsOp:  float64(cv.T1NS),
				Extra: map[string]float64{"amdahl_serial_frac": cv.AmdahlSerialFrac},
			}
		}
	}

	run := benchRun{
		Label:      label,
		Recorded:   doc.Recorded,
		GoVersion:  doc.GoVersion,
		Caveat:     caveat,
		Benchmarks: bms,
	}
	replaced := false
	for i := range f.Runs {
		if f.Runs[i].Label == label {
			f.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		f.Runs = append(f.Runs, run)
	}
	f.Schema = 1
	return writeJSONFile(path, f)
}
