package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestParseGraphSpec(t *testing.T) {
	good := map[string]graphSpec{
		"pa:20000x8": {kind: "pa", n: 20000, deg: 8},
		"er:500x3":   {kind: "er", n: 500, deg: 3},
	}
	for in, want := range good {
		got, err := parseGraphSpec(in)
		if err != nil {
			t.Fatalf("parseGraphSpec(%q): %v", in, err)
		}
		if got != want {
			t.Errorf("parseGraphSpec(%q) = %+v, want %+v", in, got, want)
		}
		if got.String() != in {
			t.Errorf("String() = %q, want %q", got.String(), in)
		}
	}
	for _, bad := range []string{"", "pa", "pa:20000", "ws:100x4", "pa:1x4", "pa:100x0", "pa:axb"} {
		if _, err := parseGraphSpec(bad); err == nil {
			t.Errorf("parseGraphSpec(%q): want error", bad)
		}
	}
}

// TestAmdahlFitRecovers feeds the fitter synthetic data generated from
// Amdahl's law itself and checks it recovers the serial fraction.
func TestAmdahlFitRecovers(t *testing.T) {
	const t1 = 1e9
	for _, s := range []float64{0, 0.1, 0.5, 0.9, 1} {
		var pts []point
		for _, w := range []int{1, 2, 4, 8} {
			tw := t1 * (s + (1-s)/float64(w))
			pts = append(pts, point{Workers: w, NS: int64(tw)})
		}
		got := amdahlFit(pts, t1)
		if math.Abs(got-s) > 1e-6 {
			t.Errorf("amdahlFit: s=%g recovered as %g", s, got)
		}
	}
}

func TestAmdahlFitDegenerate(t *testing.T) {
	if got := amdahlFit([]point{{Workers: 1, NS: 100}}, 100); got != -1 {
		t.Errorf("no W>1 points: got %g, want -1", got)
	}
	if got := amdahlFit([]point{{Workers: 2, NS: 100}}, 0); got != -1 {
		t.Errorf("t1=0: got %g, want -1", got)
	}
	// Super-linear measurements clamp to 0, slower-than-serial to 1.
	if got := amdahlFit([]point{{Workers: 4, NS: 10}}, 1000); got != 0 {
		t.Errorf("super-linear: got %g, want 0", got)
	}
	if got := amdahlFit([]point{{Workers: 4, NS: 5000}}, 1000); got != 1 {
		t.Errorf("anti-scaling: got %g, want clamp 1", got)
	}
}

func TestMedianInt64(t *testing.T) {
	if got := medianInt64(nil); got != 0 {
		t.Errorf("empty: %d", got)
	}
	if got := medianInt64([]int64{5}); got != 5 {
		t.Errorf("single: %d", got)
	}
	if got := medianInt64([]int64{9, 1, 5}); got != 5 {
		t.Errorf("odd: %d", got)
	}
	in := []int64{9, 1, 5}
	_ = medianInt64(in)
	if in[0] != 9 {
		t.Error("medianInt64 mutated its input")
	}
}

func TestBuildCurves(t *testing.T) {
	cells := []cell{
		{Graph: "pa:100x4", Gen: "subsim", Estimator: "exact", Workers: 2, PhaseNS: map[string]int64{
			"generate": 600, "splice": 100, "index-build": 100, "select": 100, "total": 800}},
		{Graph: "pa:100x4", Gen: "subsim", Estimator: "exact", Workers: 1, PhaseNS: map[string]int64{
			"generate": 1000, "splice": 100, "index-build": 100, "select": 100, "total": 1200}},
		// A foreign-estimator cell must be filtered out of the sweep.
		{Graph: "pa:100x4", Gen: "subsim", Estimator: "hll", Workers: 1, PhaseNS: map[string]int64{
			"generate": 1, "splice": 1, "index-build": 1, "select": 1, "total": 4}},
	}
	curves := buildCurves("pa:100x4", "subsim", "exact", cellsFor(cells, "pa:100x4", "subsim", "exact"))
	if len(curves) != len(phaseNames) {
		t.Fatalf("got %d curves, want %d", len(curves), len(phaseNames))
	}
	gen := curves[0]
	if gen.Phase != "generate" || gen.T1NS != 1000 {
		t.Fatalf("first curve = %+v", gen)
	}
	if len(gen.Points) != 2 || gen.Points[0].Workers != 1 || gen.Points[1].Workers != 2 {
		t.Fatalf("points not sorted by W: %+v", gen.Points)
	}
	if math.Abs(gen.Points[1].Speedup-1000.0/600.0) > 1e-9 {
		t.Errorf("speedup = %g", gen.Points[1].Speedup)
	}
	if math.Abs(gen.Points[1].Efficiency-1000.0/600.0/2) > 1e-9 {
		t.Errorf("efficiency = %g", gen.Points[1].Efficiency)
	}
	// generate: T2/T1 = 0.6, x = 0.5, y = 0.1 → s = 0.2.
	if math.Abs(gen.AmdahlSerialFrac-0.2) > 1e-9 {
		t.Errorf("amdahl = %g, want 0.2", gen.AmdahlSerialFrac)
	}
}

func TestBenchName(t *testing.T) {
	// Exact rows keep the historic names so recorded baselines compare.
	for _, est := range []string{"", "exact"} {
		got := benchName("pa2000x4", "subsim", est, "index-build", 4)
		want := "BenchmarkScaleMatrix_pa2000x4_subsim_indexbuild_W4"
		if got != want {
			t.Errorf("benchName(est=%q) = %q, want %q", est, got, want)
		}
	}
	got := benchName("pa2000x4", "subsim", "hll", "index-build", 4)
	want := "BenchmarkScaleMatrix_pa2000x4_subsim_hll_indexbuild_W4"
	if got != want {
		t.Errorf("benchName = %q, want %q", got, want)
	}
}

// TestRecordBench checks the emitted file parses under cmd/benchjson's
// schema: one row per point with speedup/efficiency extras on W>1 plus
// an Amdahl row, re-recording under the same label replaces the run,
// and the caveat survives.
func TestRecordBench(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	doc := &resultDoc{
		Recorded:  "2026-01-01T00:00:00Z",
		GoVersion: "go1.24.0",
		Curves: buildCurves("pa:100x4", "subsim", "exact", []cell{
			{Graph: "pa:100x4", Gen: "subsim", Estimator: "exact", Workers: 1, PhaseNS: map[string]int64{
				"generate": 1000, "splice": 10, "index-build": 10, "select": 10, "total": 1030}},
			{Graph: "pa:100x4", Gen: "subsim", Estimator: "exact", Workers: 2, PhaseNS: map[string]int64{
				"generate": 600, "splice": 10, "index-build": 10, "select": 10, "total": 630}},
		}),
	}
	if err := recordBench(path, "scale-matrix", "single-core host", doc); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f benchJSONFile
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != 1 || len(f.Runs) != 1 {
		t.Fatalf("file = %+v", f)
	}
	run := f.Runs[0]
	if run.Caveat != "single-core host" {
		t.Errorf("caveat = %q", run.Caveat)
	}
	// 5 phases × 2 workers + 5 Amdahl rows.
	if len(run.Benchmarks) != 15 {
		t.Errorf("got %d benchmark rows, want 15", len(run.Benchmarks))
	}
	w2 := run.Benchmarks["BenchmarkScaleMatrix_pa100x4_subsim_generate_W2"]
	if w2.NsOp != 600 || w2.Extra["speedup"] == 0 || w2.Extra["efficiency"] == 0 {
		t.Errorf("W2 row = %+v", w2)
	}
	am := run.Benchmarks["BenchmarkScaleMatrix_pa100x4_subsim_generate_W0_Amdahl"]
	if am.Extra["amdahl_serial_frac"] == 0 {
		t.Errorf("Amdahl row = %+v", am)
	}
	// Re-record under the same label: still one run.
	if err := recordBench(path, "scale-matrix", "", doc); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f2 benchJSONFile
	if err := json.Unmarshal(raw, &f2); err != nil {
		t.Fatal(err)
	}
	if len(f2.Runs) != 1 || f2.Runs[0].Caveat != "" {
		t.Fatalf("re-record: runs=%d caveat=%q", len(f2.Runs), f2.Runs[0].Caveat)
	}
}

// TestRunTinyMatrix drives the full pipeline end to end on a tiny matrix
// and checks the artifacts: schema-stamped JSON with timeline digests,
// valid curves, the worker-independence assertion passing, a Perfetto
// trace for the last cell, and zero splice time on sharded rows (the
// splice phase does not exist on the zero-copy path).
func TestRunTinyMatrix(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "matrix.json")
	reportPath := filepath.Join(dir, "report.json")
	tracePath := filepath.Join(dir, "trace.json")
	err := run("pa:500x4", "subsim", "exact,hll,sharded", "1,2", 1, 600, 2, 5, 7,
		jsonPath, filepath.Join(dir, "bench.json"), "tiny", reportPath, tracePath, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc resultDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "subsim.scalematrix" || doc.SchemaVersion != 1 {
		t.Fatalf("schema = %q v%d", doc.Schema, doc.SchemaVersion)
	}
	// 3 estimators × 2 worker counts.
	if len(doc.Cells) != 6 {
		t.Fatalf("got %d cells", len(doc.Cells))
	}
	perEst := map[string]int{}
	for _, c := range doc.Cells {
		perEst[c.Estimator]++
		if c.Timeline == nil || c.Timeline.Records == 0 {
			t.Errorf("cell %s W=%d: missing timeline digest", c.Estimator, c.Workers)
		}
		if c.PhaseNS["total"] <= 0 {
			t.Errorf("cell %s W=%d: no total time", c.Estimator, c.Workers)
		}
		if c.Estimator == "sharded" && c.PhaseNS["splice"] != 0 {
			t.Errorf("sharded cell W=%d: splice phase = %dns, want 0 (zero-copy fill)",
				c.Workers, c.PhaseNS["splice"])
		}
	}
	if perEst["exact"] != 2 || perEst["hll"] != 2 || perEst["sharded"] != 2 {
		t.Fatalf("cells per estimator = %v", perEst)
	}
	if len(doc.Curves) != 3*len(phaseNames) {
		t.Fatalf("got %d curves", len(doc.Curves))
	}
	if _, err := os.Stat(reportPath); err != nil {
		t.Errorf("report not written: %v", err)
	}
	traceRaw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatalf("trace not written: %v", err)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(traceRaw, &trace); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
}
