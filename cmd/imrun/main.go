// Command imrun runs one influence-maximization algorithm on a graph
// file and reports the seed set, certified bounds, cost accounting, and
// an independent forward Monte-Carlo estimate of the seed set's spread.
//
// Usage:
//
//	imrun -graph graph.bin -alg hist+subsim -k 100 -eps 0.1
//
// Flags:
//
//	-graph   input graph path (from graphgen; text or .bin)
//	-alg     imm | ssa | opimc | subsim | hist | hist+subsim
//	-k       seed-set size
//	-eps     approximation parameter ε
//	-seed    RNG seed
//	-workers RR-generation parallelism (0 = GOMAXPROCS)
//	-estimator coverage backend: exact (CSR inverted index, default),
//	         hll (HyperLogLog sketches: θ-independent memory, estimates
//	         within the backend's certified relative error) or sharded
//	         (shard-parallel exact engine: zero-splice fill, parallel
//	         CELF rounds, byte-identical results to exact)
//	-sketch-p HLL register-index width p, 2^p registers per node
//	         (0 = default 8, i.e. 256 B/node, ~6.5% relative error)
//	-bound   sample-complexity analysis capping θ: imm (worst-case
//	         IMM/OPIM-C constants, default) or tight (stop at the smaller
//	         Sadeh-Cohen-Kaplan-style tightened budget); both budgets are
//	         reported either way
//	-mc      forward simulations for the final spread estimate (0 = skip)
//	-lt      run under the Linear Threshold model (imm/ssa/opimc only)
//	-repeat  run the algorithm this many times (1 = once; higher values
//	         exercise the live telemetry plane on long runs)
//	-out     write the seed set to this file (one id per line)
//	-trace   write the schema-versioned JSON run report to this file
//	-metrics dump Prometheus-style metrics to stderr after the run
//	-json    emit the full Result plus run report as one JSON object
//	-log     emit structured run events on stderr: "text" or "json"
//	-serve   serve the live telemetry plane on this address (e.g. :6060):
//	         /metrics, /healthz, /readyz, /progress, /report, /timeline,
//	         /trace (Perfetto-loadable trace-event export), /events,
//	         /debug/bundle, /debug/*
//	-pprof   deprecated alias for -serve
//	-flight  always-on flight recorder: black-box event journal,
//	         runtime-metrics history, and diagnostic bundles on panic,
//	         SIGQUIT/SIGUSR1, stall, or GET /debug/bundle (default on;
//	         -flight=false turns the black box off)
//	-flight-dir    directory for *.bundle diagnostic bundles (default .)
//	-stall-window  arm the stall watchdog: a bundle is written when an
//	         active phase makes no progress for this long (0 = off)
//	-flight-selftest  force a failure to prove the recorder end to end:
//	         "panic" (crash with a panic bundle, nonzero exit) or "stall"
//	         (hold a phase idle until the watchdog writes a bundle)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"subsim"
	"subsim/internal/obs"
	"subsim/internal/obs/flight"
	"subsim/internal/obs/serve"
	"subsim/internal/seedio"
)

var algByName = map[string]subsim.Algorithm{
	"imm":         subsim.AlgIMM,
	"ssa":         subsim.AlgSSA,
	"opimc":       subsim.AlgOPIMC,
	"subsim":      subsim.AlgSUBSIM,
	"hist":        subsim.AlgHIST,
	"hist+subsim": subsim.AlgHISTSubsim,
}

// jsonOutput is the -json document: the run parameters, the full Result
// (whose Report field carries the span tree and histograms), and the
// optional forward-MC spread.
type jsonOutput struct {
	Graph struct {
		Path  string `json:"path"`
		N     int    `json:"n"`
		M     int64  `json:"m"`
		Model string `json:"model"`
	} `json:"graph"`
	Algorithm string         `json:"algorithm"`
	K         int            `json:"k"`
	Eps       float64        `json:"eps"`
	Seed      uint64         `json:"seed"`
	MCSpread  *float64       `json:"mc_spread,omitempty"`
	MCSamples int            `json:"mc_samples,omitempty"`
	Result    *subsim.Result `json:"result"`
}

func main() {
	graphPath := flag.String("graph", "", "input graph path")
	algName := flag.String("alg", "subsim", "algorithm: imm, ssa, opimc, subsim, hist, hist+subsim")
	k := flag.Int("k", 50, "seed set size")
	eps := flag.Float64("eps", 0.1, "approximation parameter epsilon")
	seed := flag.Uint64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "RR generation workers (0 = GOMAXPROCS)")
	estimator := flag.String("estimator", "exact", "coverage backend: exact, hll or sharded")
	sketchP := flag.Int("sketch-p", 0, "HLL precision p (2^p registers/node, 0 = default)")
	bound := flag.String("bound", "imm", "sample-complexity bound: imm or tight")
	mc := flag.Int("mc", 10000, "forward simulations for spread estimate (0 = skip)")
	lt := flag.Bool("lt", false, "use the Linear Threshold model")
	repeat := flag.Int("repeat", 1, "run the algorithm this many times")
	out := flag.String("out", "", "write the seed set to this file (one id per line)")
	tracePath := flag.String("trace", "", "write the JSON run report to this file")
	metrics := flag.Bool("metrics", false, "dump Prometheus-style metrics to stderr")
	jsonOut := flag.Bool("json", false, "emit Result + run report as one JSON object on stdout")
	logFmt := flag.String("log", "", "structured run events on stderr: text or json")
	serveAddr := flag.String("serve", "", "serve the live telemetry plane on this address")
	pprofAddr := flag.String("pprof", "", "deprecated alias for -serve")
	flightOn := flag.Bool("flight", true, "enable the flight recorder (journal, history, crash bundles)")
	flightDir := flag.String("flight-dir", ".", "directory for diagnostic *.bundle directories")
	stallWindow := flag.Duration("stall-window", 0, "stall-watchdog window (0 = watchdog off)")
	flightSelftest := flag.String("flight-selftest", "", "force a recorder exercise: panic or stall")
	flag.Parse()

	switch *flightSelftest {
	case "", "panic", "stall":
	default:
		fmt.Fprintf(os.Stderr, "imrun: unknown -flight-selftest %q (want panic or stall)\n", *flightSelftest)
		os.Exit(2)
	}
	if *flightSelftest != "" && !*flightOn {
		fmt.Fprintln(os.Stderr, "imrun: -flight-selftest needs the flight recorder (-flight)")
		os.Exit(2)
	}
	if *graphPath == "" && *flightSelftest == "" {
		fmt.Fprintln(os.Stderr, "imrun: -graph is required (generate one with graphgen)")
		os.Exit(2)
	}
	alg, ok := algByName[strings.ToLower(*algName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "imrun: unknown -alg %q\n", *algName)
		os.Exit(2)
	}
	if *serveAddr == "" && *pprofAddr != "" {
		fmt.Fprintln(os.Stderr, "imrun: -pprof is deprecated, use -serve")
		*serveAddr = *pprofAddr
	}
	if *repeat < 1 {
		*repeat = 1
	}

	est, err := subsim.ParseEstimator(*estimator)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imrun: %v\n", err)
		os.Exit(2)
	}
	bnd, err := subsim.ParseBound(*bound)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imrun: %v\n", err)
		os.Exit(2)
	}

	opt := subsim.Options{
		K: *k, Eps: *eps, Seed: *seed, Workers: *workers,
		Estimator: est, SketchPrecision: *sketchP, Bound: bnd,
	}
	if *logFmt != "" {
		opt.Logger = subsim.NewLogger(os.Stderr, *logFmt)
	}

	// Any observability consumer turns the tracer on — including the
	// flight recorder, which is on by default: the black box records
	// whether or not anything is watching. A nil tracer costs nothing
	// otherwise (-flight=false with no other consumer).
	var tr *subsim.Tracer
	if *tracePath != "" || *metrics || *jsonOut || *serveAddr != "" || *flightOn {
		tr = subsim.NewTracer()
		// The execution timeline powers /trace + /timeline on the plane and
		// the timeline summary in the run report; recording costs a few
		// atomics per RR set, so it simply rides along whenever tracing is on.
		tr.EnableTimeline(0)
		tr.SetMeta("algorithm", alg.String())
		tr.SetMeta("graph", *graphPath)
		tr.SetMeta("k", *k)
		tr.SetMeta("eps", *eps)
		tr.SetMeta("seed", *seed)
		tr.SetMeta("estimator", est.String())
		tr.SetMeta("bound", bnd.String())
		opt.Tracer = tr
	}

	// Flight recorder: journal + metrics history always, watchdog when a
	// stall window is armed, bundles on panic / signal / stall / HTTP.
	var fl *obs.Flight
	if *flightOn {
		window := *stallWindow
		if *flightSelftest == "stall" && window <= 0 {
			window = 250 * time.Millisecond
		}
		stallBundle := make(chan string, 1)
		fl = tr.EnableFlight(obs.FlightConfig{
			Dir:         *flightDir,
			Tool:        "imrun",
			StallWindow: window,
			OnBundle: func(path, reason string, err error) {
				if err != nil {
					fmt.Fprintf(os.Stderr, "imrun: flight bundle (%s): %v\n", reason, err)
					return
				}
				fmt.Fprintf(os.Stderr, "imrun: flight bundle (%s) written to %s\n", reason, path)
				if reason == "stall" {
					select {
					case stallBundle <- path:
					default:
					}
				}
			},
		})
		defer fl.Close()
		// LIFO: on a panic CapturePanic writes the bundle first, then
		// Close stops the background goroutines while the value unwinds.
		defer fl.CapturePanic()
		stopSignals := fl.InstallSignalHandlers()
		defer stopSignals()
		// Mirror run lifecycle events into the journal even when -log is
		// off; with -log on, the same logger feeds both sinks.
		opt.Logger = opt.Logger.WithFlight(fl.Journal().Stream(flight.StreamRun))

		if *flightSelftest != "" {
			flightSelftestRun(tr, fl, *flightSelftest, window, stallBundle)
		}
	}

	// The telemetry plane serves /metrics, /healthz, /readyz, /progress,
	// /report and /debug/* off one mux; it only reads the tracer's atomic
	// live paths, so scraping never perturbs the run.
	var plane *serve.Plane
	if *serveAddr != "" {
		plane = serve.New(tr)
		addr, err := plane.Start(*serveAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imrun: %v\n", err)
			os.Exit(1)
		}
		defer func() { _ = plane.Close() }()
		fmt.Fprintf(os.Stderr, "imrun: serving telemetry on %s (/metrics /healthz /readyz /progress /report /timeline /trace /debug)\n", addr)
	}

	g, err := subsim.LoadGraph(*graphPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imrun: %v\n", err)
		os.Exit(1)
	}
	if tr != nil {
		tr.SetMeta("graph_n", g.N())
		tr.SetMeta("graph_m", g.M())
	}
	if plane != nil {
		plane.SetGraphLoaded(true)
	}

	var res *subsim.Result
	for rep := 0; rep < *repeat; rep++ {
		if plane != nil {
			plane.RunStarted()
		}
		if *lt {
			g.AssignLT()
			res, err = subsim.MaximizeWith(subsim.NewRRGenerator(g, subsim.GenLT), alg, opt)
		} else {
			res, err = subsim.Maximize(g, alg, opt)
		}
		if plane != nil {
			plane.RunFinished()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "imrun: %v\n", err)
			os.Exit(1)
		}
	}

	var spread *float64
	if *mc > 0 {
		model := subsim.IC
		if *lt {
			model = subsim.LT
		}
		s := subsim.EstimateInfluence(g, res.Seeds, *mc, model, *seed)
		spread = &s
	}

	if *jsonOut {
		doc := jsonOutput{Algorithm: alg.String(), K: *k, Eps: *eps, Seed: *seed, Result: res}
		doc.Graph.Path = *graphPath
		doc.Graph.N = g.N()
		doc.Graph.M = g.M()
		doc.Graph.Model = g.Model().String()
		if spread != nil {
			doc.MCSpread = spread
			doc.MCSamples = *mc
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintf(os.Stderr, "imrun: %v\n", err)
			os.Exit(1)
		}
	} else {
		printHuman(g, alg, res, *k, *eps, spread, *mc)
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "imrun: %v\n", err)
			os.Exit(1)
		}
		if err := res.Report.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "imrun: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "imrun: %v\n", err)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Printf("wrote trace %s\n", *tracePath)
		}
	}
	if *metrics {
		if err := tr.Metrics().WritePrometheus(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "imrun: %v\n", err)
		}
	}

	if *out != "" {
		if err := seedio.WriteFile(*out, res.Seeds); err != nil {
			fmt.Fprintf(os.Stderr, "imrun: %v\n", err)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Printf("wrote %s\n", *out)
		}
	}
}

// flightSelftestRun forces a recorder-visible failure so operators (and
// make flight-smoke) can prove the black box end to end without waiting
// for a real incident. "panic" crashes through the deferred CapturePanic
// (panic bundle on disk, nonzero exit); "stall" holds a span open with
// no progress until the watchdog fires and writes a stall bundle, then
// exits 0. Never returns.
func flightSelftestRun(tr *subsim.Tracer, fl *obs.Flight, mode string, window time.Duration, stallBundle <-chan string) {
	sp := tr.Span("flight-selftest")
	switch mode {
	case "panic":
		panic("flight selftest: forced panic")
	case "stall":
		// The open span marks the phase active; emitting nothing further
		// starves the watchdog's progress signal.
		select {
		case path := <-stallBundle:
			sp.End()
			fmt.Printf("flight selftest: stall bundle %s\n", path)
			fl.Close()
			os.Exit(0)
		case <-time.After(20*window + 10*time.Second):
			sp.End()
			fmt.Fprintln(os.Stderr, "imrun: flight selftest: watchdog never fired")
			fl.Close()
			os.Exit(1)
		}
	}
	panic("unreachable")
}

func printHuman(g *subsim.Graph, alg subsim.Algorithm, res *subsim.Result, k int, eps float64, spread *float64, mc int) {
	fmt.Printf("graph: n=%d m=%d model=%s\n", g.N(), g.M(), g.Model())
	fmt.Printf("algorithm: %s  k=%d  eps=%g\n", alg, k, eps)
	fmt.Printf("elapsed: %v  rounds=%d\n", res.Elapsed, res.Rounds)
	fmt.Printf("rr sets: %d (avg size %.1f, %d edge examinations",
		res.RRStats.Sets, res.RRStats.AvgSize(), res.RRStats.EdgesExamined)
	if res.RRStats.SentinelHits > 0 {
		fmt.Printf(", %d sentinel hits", res.RRStats.SentinelHits)
	}
	fmt.Println(")")
	if res.SentinelSize > 0 {
		fmt.Printf("sentinels: %d nodes, %d sentinel-phase RR sets\n", res.SentinelSize, res.SentinelRR)
	}
	// Phase timings from the span tree, aggregated by span name in
	// first-seen order ("where did the time go").
	if aggs := res.Report.AggregateSpans(); len(aggs) > 0 {
		fmt.Printf("phases:")
		for _, a := range aggs {
			if a.Count > 1 {
				fmt.Printf("  %s %v (x%d)", a.Name, a.Total().Round(10e3), a.Count)
			} else {
				fmt.Printf("  %s %v", a.Name, a.Total().Round(10e3))
			}
		}
		fmt.Println()
	}
	if res.ThetaWorstCase > 0 {
		fmt.Printf("theta budget: worst-case %d, tightened %d", res.ThetaWorstCase, res.ThetaTight)
		if saved := res.ThetaWorstCase - res.ThetaTight; saved > 0 {
			fmt.Printf(" (%.1f%% smaller)", 100*float64(saved)/float64(res.ThetaWorstCase))
		}
		fmt.Println()
	}
	fmt.Printf("influence estimate: %.1f", res.Influence)
	if res.UpperBound > 0 {
		fmt.Printf("  certified: [%.1f, %.1f] (ratio %.3f)", res.LowerBound, res.UpperBound, res.Approx)
	}
	fmt.Println()
	if spread != nil {
		fmt.Printf("forward MC spread (%d samples): %.1f\n", mc, *spread)
	}
	fmt.Printf("seeds: %v\n", res.Seeds)
}
