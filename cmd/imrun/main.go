// Command imrun runs one influence-maximization algorithm on a graph
// file and reports the seed set, certified bounds, cost accounting, and
// an independent forward Monte-Carlo estimate of the seed set's spread.
//
// Usage:
//
//	imrun -graph graph.bin -alg hist+subsim -k 100 -eps 0.1
//
// Flags:
//
//	-graph   input graph path (from graphgen; text or .bin)
//	-alg     imm | ssa | opimc | subsim | hist | hist+subsim
//	-k       seed-set size
//	-eps     approximation parameter ε
//	-seed    RNG seed
//	-workers RR-generation parallelism (0 = GOMAXPROCS)
//	-mc      forward simulations for the final spread estimate (0 = skip)
//	-lt      run under the Linear Threshold model (imm/ssa/opimc only)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"subsim"
	"subsim/internal/seedio"
)

var algByName = map[string]subsim.Algorithm{
	"imm":         subsim.AlgIMM,
	"ssa":         subsim.AlgSSA,
	"opimc":       subsim.AlgOPIMC,
	"subsim":      subsim.AlgSUBSIM,
	"hist":        subsim.AlgHIST,
	"hist+subsim": subsim.AlgHISTSubsim,
}

func main() {
	graphPath := flag.String("graph", "", "input graph path")
	algName := flag.String("alg", "subsim", "algorithm: imm, ssa, opimc, subsim, hist, hist+subsim")
	k := flag.Int("k", 50, "seed set size")
	eps := flag.Float64("eps", 0.1, "approximation parameter epsilon")
	seed := flag.Uint64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "RR generation workers (0 = GOMAXPROCS)")
	mc := flag.Int("mc", 10000, "forward simulations for spread estimate (0 = skip)")
	lt := flag.Bool("lt", false, "use the Linear Threshold model")
	out := flag.String("out", "", "write the seed set to this file (one id per line)")
	flag.Parse()

	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "imrun: -graph is required (generate one with graphgen)")
		os.Exit(2)
	}
	alg, ok := algByName[strings.ToLower(*algName)]
	if !ok {
		fmt.Fprintf(os.Stderr, "imrun: unknown -alg %q\n", *algName)
		os.Exit(2)
	}

	g, err := subsim.LoadGraph(*graphPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "imrun: %v\n", err)
		os.Exit(1)
	}
	opt := subsim.Options{K: *k, Eps: *eps, Seed: *seed, Workers: *workers}

	var res *subsim.Result
	if *lt {
		g.AssignLT()
		res, err = subsim.MaximizeWith(subsim.NewRRGenerator(g, subsim.GenLT), alg, opt)
	} else {
		res, err = subsim.Maximize(g, alg, opt)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "imrun: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("graph: n=%d m=%d model=%s\n", g.N(), g.M(), g.Model())
	fmt.Printf("algorithm: %s  k=%d  eps=%g\n", alg, *k, *eps)
	fmt.Printf("elapsed: %v  rounds=%d\n", res.Elapsed, res.Rounds)
	fmt.Printf("rr sets: %d (avg size %.1f, %d edge examinations)\n",
		res.RRStats.Sets, res.RRStats.AvgSize(), res.RRStats.EdgesExamined)
	if res.SentinelSize > 0 {
		fmt.Printf("sentinels: %d nodes, %d sentinel-phase RR sets\n", res.SentinelSize, res.SentinelRR)
	}
	fmt.Printf("influence estimate: %.1f", res.Influence)
	if res.UpperBound > 0 {
		fmt.Printf("  certified: [%.1f, %.1f] (ratio %.3f)", res.LowerBound, res.UpperBound, res.Approx)
	}
	fmt.Println()
	if *mc > 0 {
		model := subsim.IC
		if *lt {
			model = subsim.LT
		}
		spread := subsim.EstimateInfluence(g, res.Seeds, *mc, model, *seed)
		fmt.Printf("forward MC spread (%d samples): %.1f\n", *mc, spread)
	}
	fmt.Printf("seeds: %v\n", res.Seeds)
	if *out != "" {
		if err := seedio.WriteFile(*out, res.Seeds); err != nil {
			fmt.Fprintf(os.Stderr, "imrun: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}
