// Command servesmoke is the end-to-end smoke gate for the live
// telemetry plane (make serve-smoke). It drives the real binaries the
// way an operator would:
//
//  1. generate a small graph with graphgen,
//  2. start `imrun -serve 127.0.0.1:0` on it with enough -repeat
//     iterations to keep the run alive while we scrape,
//  3. assert every plane endpoint answers 200 (and /readyz flips from
//     graph readiness), that subsim_rr_sets_total is present, parseable
//     and strictly increases across scrapes of the live run, that
//     /progress reports a non-empty phase mid-run, that /trace serves a
//     well-formed trace-event document with complete events on a named
//     worker track, that /events serves a schema-versioned flight
//     journal carrying run events, and that GET /debug/bundle writes a
//     complete diagnostic bundle whose manifest validates on disk,
//  4. capture /report and check `obsdiff report report` exits 0
//     (self-compare is clean) while the committed regressed fixture
//     pair exits 1 (the gate actually fails on regressions),
//  5. shut the run down and make sure the plane goes away with it,
//  6. repeat a shortened pass with `-estimator hll -bound tight` and
//     assert the plane reports the sketch backend (subsim_sketch_bytes
//     > 0) and an ordered tightened budget (0 < theta_tight <=
//     theta_worst), so the estimator dimension stays scrapeable
//     end to end.
//
// It exits 0 on success, 1 on any assertion failure, 2 on usage/setup
// errors. All scratch files live in a temp dir.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

func main() {
	os.Exit(run())
}

// tools holds the paths of the prebuilt binaries under test.
type tools struct {
	graphgen string
	imrun    string
	obsdiff  string
}

func run() int {
	var t tools
	flag.StringVar(&t.graphgen, "graphgen", "bin/graphgen", "graphgen binary")
	flag.StringVar(&t.imrun, "imrun", "bin/imrun", "imrun binary")
	flag.StringVar(&t.obsdiff, "obsdiff", "bin/obsdiff", "obsdiff binary")
	fixtures := flag.String("fixtures", "internal/obsdiff/testdata", "dir with base.json/regressed.json")
	timeout := flag.Duration("timeout", 60*time.Second, "overall deadline")
	flag.Parse()

	for _, bin := range []string{t.graphgen, t.imrun, t.obsdiff} {
		if _, err := os.Stat(bin); err != nil {
			fmt.Fprintf(os.Stderr, "servesmoke: missing binary %s (run via `make serve-smoke`)\n", bin)
			return 2
		}
	}
	dir, err := os.MkdirTemp("", "servesmoke")
	if err != nil {
		fmt.Fprintf(os.Stderr, "servesmoke: %v\n", err)
		return 2
	}
	defer func() { _ = os.RemoveAll(dir) }()

	deadline := time.Now().Add(*timeout)
	if err := smoke(t, dir, *fixtures, deadline); err != nil {
		fmt.Fprintf(os.Stderr, "servesmoke: FAIL: %v\n", err)
		return 1
	}
	fmt.Println("servesmoke: ok")
	return 0
}

func smoke(t tools, dir, fixtures string, deadline time.Time) error {
	// 1. A graph small enough to run in milliseconds but big enough
	// that 400 repeats keep the plane scrapeable for a while.
	graph := filepath.Join(dir, "g.bin")
	gen := exec.Command(t.graphgen, "-type", "pa", "-n", "3000", "-deg", "4", "-model", "wc", "-out", graph)
	if out, err := gen.CombinedOutput(); err != nil {
		return fmt.Errorf("graphgen: %v\n%s", err, out)
	}

	// 2. Long-lived imrun with the plane on an ephemeral port.
	imrun := exec.Command(t.imrun,
		"-graph", graph, "-alg", "opimc", "-k", "20", "-eps", "0.3",
		"-mc", "0", "-repeat", "400", "-serve", "127.0.0.1:0",
		"-flight-dir", dir)
	stderr, err := imrun.StderrPipe()
	if err != nil {
		return err
	}
	imrun.Stdout = io.Discard
	if err := imrun.Start(); err != nil {
		return fmt.Errorf("start imrun: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- imrun.Wait() }()
	waited := false
	stopImrun := func() {
		_ = imrun.Process.Kill()
		if !waited {
			<-done
			waited = true
		}
	}
	defer stopImrun()

	addr, err := scanServeAddr(stderr, deadline)
	if err != nil {
		return err
	}
	base := "http://" + addr

	// 3. Endpoint sweep. /readyz may legitimately 503 before the graph
	// loads, so poll it to 200 first — after that everything must be 200.
	if err := waitReady(base, deadline); err != nil {
		return err
	}
	for _, path := range []string{"/healthz", "/readyz", "/metrics", "/progress", "/progress?spans=1", "/report", "/timeline", "/debug/vars", "/events"} {
		if _, err := get(base+path, http.StatusOK); err != nil {
			return err
		}
	}

	if err := checkSetsMonotone(base, deadline); err != nil {
		return err
	}
	if err := checkProgressLive(base, deadline); err != nil {
		return err
	}
	if err := checkTrace(base); err != nil {
		return err
	}
	if err := checkEvents(base, deadline); err != nil {
		return err
	}
	if err := checkBundle(base); err != nil {
		return err
	}

	// 4. Capture a live report and gate obsdiff both ways.
	report, err := get(base+"/report", http.StatusOK)
	if err != nil {
		return err
	}
	reportPath := filepath.Join(dir, "report.json")
	if err := os.WriteFile(reportPath, report, 0o644); err != nil {
		return err
	}
	if err := expectExit(t.obsdiff, 0, reportPath, reportPath); err != nil {
		return fmt.Errorf("self-compare: %v", err)
	}
	if err := expectExit(t.obsdiff, 1,
		filepath.Join(fixtures, "base.json"), filepath.Join(fixtures, "regressed.json")); err != nil {
		return fmt.Errorf("regressed fixture: %v", err)
	}

	// 5. Tear down: once imrun dies the plane must stop answering.
	stopImrun()
	if _, err := http.Get(base + "/healthz"); err == nil {
		return fmt.Errorf("plane still serving after imrun exit")
	}

	// 6. The estimator dimension: a second pass on the sketch backend
	// with the tightened bound must keep the plane coherent.
	return smokeSketch(t, graph, deadline)
}

// smokeSketch runs a shortened imrun pass with the HLL estimator and
// tightened bound, asserting the plane identifies the sketch backend
// and publishes ordered sample budgets.
func smokeSketch(t tools, graph string, deadline time.Time) error {
	imrun := exec.Command(t.imrun,
		"-graph", graph, "-alg", "opimc", "-k", "20", "-eps", "0.3",
		"-estimator", "hll", "-bound", "tight",
		"-mc", "0", "-repeat", "400", "-serve", "127.0.0.1:0",
		"-flight-dir", filepath.Dir(graph))
	stderr, err := imrun.StderrPipe()
	if err != nil {
		return err
	}
	imrun.Stdout = io.Discard
	if err := imrun.Start(); err != nil {
		return fmt.Errorf("start sketch imrun: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- imrun.Wait() }()
	defer func() {
		_ = imrun.Process.Kill()
		<-done
	}()

	addr, err := scanServeAddr(stderr, deadline)
	if err != nil {
		return err
	}
	base := "http://" + addr
	if err := waitReady(base, deadline); err != nil {
		return err
	}
	// The gauges are published once the first run sizes its sketch, so
	// poll until subsim_sketch_bytes turns nonzero, then check the
	// budget ordering from the same scrape.
	for time.Now().Before(deadline) {
		body, err := get(base+"/metrics", http.StatusOK)
		if err != nil {
			return err
		}
		sketchBytes, err := scrapeCounter(body, "subsim_sketch_bytes")
		if err != nil {
			return err
		}
		if sketchBytes == 0 {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		worst, err := scrapeCounter(body, "subsim_theta_worst")
		if err != nil {
			return err
		}
		tight, err := scrapeCounter(body, "subsim_theta_tight")
		if err != nil {
			return err
		}
		if tight < 1 || tight > worst {
			return fmt.Errorf("sketch pass budgets not ordered: theta_tight %d, theta_worst %d", tight, worst)
		}
		return nil
	}
	return fmt.Errorf("sketch pass never published subsim_sketch_bytes > 0")
}

// scanServeAddr reads imrun's stderr until the "serving telemetry on
// ADDR" banner appears, then keeps draining the pipe in the background
// so imrun never blocks on a full stderr buffer.
func scanServeAddr(stderr io.Reader, deadline time.Time) (string, error) {
	type result struct {
		addr string
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "imrun: serving telemetry on "); ok {
				addr, _, _ := strings.Cut(rest, " ")
				ch <- result{addr: addr}
				// Keep draining.
				for sc.Scan() {
				}
				return
			}
		}
		ch <- result{err: fmt.Errorf("imrun exited before announcing the telemetry address (scan err: %v)", sc.Err())}
	}()
	select {
	case r := <-ch:
		return r.addr, r.err
	case <-time.After(time.Until(deadline)):
		return "", fmt.Errorf("timed out waiting for the telemetry banner")
	}
}

// waitReady polls /readyz until it returns 200 (graph loaded).
func waitReady(base string, deadline time.Time) error {
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("/readyz never reached 200")
}

// get fetches a URL and asserts the status code, returning the body.
func get(url string, wantStatus int) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("GET %s: %v", url, err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("GET %s: read: %v", url, err)
	}
	if resp.StatusCode != wantStatus {
		return nil, fmt.Errorf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	return body, nil
}

// checkSetsMonotone scrapes /metrics until subsim_rr_sets_total has
// strictly increased at least once, asserting it never goes backwards.
func checkSetsMonotone(base string, deadline time.Time) error {
	var last int64 = -1
	increased := false
	for time.Now().Before(deadline) {
		body, err := get(base+"/metrics", http.StatusOK)
		if err != nil {
			return err
		}
		sets, err := scrapeCounter(body, "subsim_rr_sets_total")
		if err != nil {
			return err
		}
		if last >= 0 && sets < last {
			return fmt.Errorf("rr_sets_total went backwards: %d -> %d", last, sets)
		}
		if last >= 0 && sets > last {
			increased = true
			break
		}
		last = sets
		time.Sleep(20 * time.Millisecond)
	}
	if !increased {
		return fmt.Errorf("rr_sets_total never increased during the run")
	}
	return nil
}

// scrapeCounter pulls one un-labelled series value out of a Prometheus
// text exposition.
func scrapeCounter(body []byte, name string) (int64, error) {
	for _, line := range strings.Split(string(body), "\n") {
		if v, ok := strings.CutPrefix(line, name+" "); ok {
			return strconv.ParseInt(strings.TrimSpace(v), 10, 64)
		}
	}
	return 0, fmt.Errorf("exposition missing %s", name)
}

// checkProgressLive polls /progress until it reports a non-empty phase
// with a started run — i.e. the live view actually tracks the run.
func checkProgressLive(base string, deadline time.Time) error {
	for time.Now().Before(deadline) {
		body, err := get(base+"/progress", http.StatusOK)
		if err != nil {
			return err
		}
		var prog struct {
			Schema      string `json:"schema"`
			Phase       string `json:"phase"`
			RunsStarted int64  `json:"runs_started"`
			RRSets      int64  `json:"rr_sets"`
		}
		if err := json.Unmarshal(body, &prog); err != nil {
			return fmt.Errorf("/progress is not JSON: %v", err)
		}
		if prog.Schema != "subsim.progress" {
			return fmt.Errorf("/progress schema = %q", prog.Schema)
		}
		if prog.Phase != "" && prog.RunsStarted > 0 && prog.RRSets > 0 {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("/progress never showed a live phase mid-run")
}

// checkTrace fetches the Perfetto trace export mid-run and asserts it
// is a well-formed trace-event document with real content: complete
// ("X") events present and at least one named worker track. Runs after
// checkSetsMonotone, so RR generation has demonstrably happened and the
// timeline cannot legitimately be empty.
func checkTrace(base string) error {
	body, err := get(base+"/trace", http.StatusOK)
	if err != nil {
		return err
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Args struct {
				Name string `json:"name"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("/trace is not JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		return fmt.Errorf("/trace displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	complete, workerTrack := 0, false
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
		case "M":
			if ev.Name == "thread_name" && strings.HasPrefix(ev.Args.Name, "worker ") {
				workerTrack = true
			}
		}
	}
	if complete == 0 {
		return fmt.Errorf("/trace has no complete events mid-run")
	}
	if !workerTrack {
		return fmt.Errorf("/trace names no worker track")
	}
	return nil
}

// checkEvents polls the flight journal endpoint until it reports run
// events, validating the schema envelope and the ?n= tail contract.
func checkEvents(base string, deadline time.Time) error {
	for time.Now().Before(deadline) {
		body, err := get(base+"/events?n=4", http.StatusOK)
		if err != nil {
			return err
		}
		var doc struct {
			Schema  string `json:"schema"`
			Version int    `json:"version"`
			Written int64  `json:"written"`
			Events  []struct {
				Kind string `json:"kind"`
			} `json:"events"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			return fmt.Errorf("/events is not JSON: %v", err)
		}
		if doc.Schema != "subsim.flight-journal" || doc.Version != 1 {
			return fmt.Errorf("/events envelope = %q v%d", doc.Schema, doc.Version)
		}
		if len(doc.Events) > 4 {
			return fmt.Errorf("/events?n=4 returned %d events", len(doc.Events))
		}
		if doc.Written > 0 && len(doc.Events) > 0 {
			for _, ev := range doc.Events {
				if ev.Kind == "" || ev.Kind == "none" {
					return fmt.Errorf("/events carries an untyped event: %s", body)
				}
			}
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("/events never showed journal events mid-run")
}

// checkBundle triggers a diagnostic bundle over HTTP and validates the
// returned manifest shape against the bundle on disk: schema-versioned,
// reason "http", and every artifact present without producer errors.
func checkBundle(base string) error {
	body, err := get(base+"/debug/bundle", http.StatusOK)
	if err != nil {
		return err
	}
	var doc struct {
		Path    string `json:"path"`
		Schema  string `json:"schema"`
		Version int    `json:"version"`
		Reason  string `json:"reason"`
		Files   []struct {
			Name  string `json:"name"`
			Bytes int64  `json:"bytes"`
			Error string `json:"error"`
		} `json:"files"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("/debug/bundle is not JSON: %v", err)
	}
	if doc.Schema != "subsim.flight-bundle" || doc.Version != 1 {
		return fmt.Errorf("/debug/bundle envelope = %q v%d", doc.Schema, doc.Version)
	}
	if doc.Reason != "http" {
		return fmt.Errorf("/debug/bundle reason = %q, want http", doc.Reason)
	}
	want := map[string]bool{
		"report.json": false, "spans.json": false, "trace.json": false,
		"metrics.prom": false, "journal.json": false, "history.json": false,
		"goroutines.txt": false, "heap.pprof": false,
	}
	for _, f := range doc.Files {
		if f.Error != "" {
			return fmt.Errorf("bundle artifact %s failed: %s", f.Name, f.Error)
		}
		if _, ok := want[f.Name]; ok {
			want[f.Name] = true
		}
		if fi, err := os.Stat(filepath.Join(doc.Path, f.Name)); err != nil {
			return fmt.Errorf("bundle artifact %s missing on disk: %v", f.Name, err)
		} else if fi.Size() != f.Bytes {
			return fmt.Errorf("bundle artifact %s: manifest says %d bytes, disk has %d", f.Name, f.Bytes, fi.Size())
		}
	}
	for name, seen := range want {
		if !seen {
			return fmt.Errorf("bundle manifest missing artifact %s", name)
		}
	}
	if _, err := os.Stat(filepath.Join(doc.Path, "manifest.json")); err != nil {
		return fmt.Errorf("bundle manifest.json missing on disk: %v", err)
	}
	return nil
}

// expectExit runs obsdiff on two reports and asserts its exit code.
func expectExit(obsdiff string, want int, base, next string) error {
	cmd := exec.Command(obsdiff, base, next)
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			return fmt.Errorf("obsdiff: %v\n%s", err, out)
		}
		code = ee.ExitCode()
	}
	if code != want {
		return fmt.Errorf("obsdiff %s %s: exit %d, want %d\n%s", base, next, code, want, out)
	}
	return nil
}
