// Command subsimlint runs the repository's project-invariant static
// analyzers (see internal/lintpass) over Go packages and exits non-zero
// when any invariant is violated.
//
// Standalone usage:
//
//	subsimlint ./...            # lint the whole module, human-readable
//	subsimlint -json ./...      # machine-readable diagnostics
//	subsimlint -list            # describe the analyzers and directives
//
// Compiler-telemetry gate (see internal/lintpass/compiler.go): compile
// the module with escape-analysis and bounds-check-elimination debug
// output, attribute the diagnostics to functions, and fail if any
// //subsim:hotpath function exceeds its committed budget:
//
//	subsimlint -compiler ./...                  # gate against lint_baseline.json
//	subsimlint -compiler -baseline-write ./...  # refresh the baseline deliberately
//
// The tool is also a `go vet -vettool` compatible unit checker:
//
//	go build -o bin/subsimlint ./cmd/subsimlint
//	go vet -vettool=bin/subsimlint ./...
//
// In vettool mode the go command hands the tool one pre-planned package
// at a time (a *.cfg JSON file with source files and export data); see
// vet.go for the protocol subset implemented.
//
// Exit codes: 0 clean, 1 diagnostics found, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"subsim/internal/lintpass"
)

func main() {
	var (
		jsonOut       = flag.Bool("json", false, "emit diagnostics as a JSON array")
		list          = flag.Bool("list", false, "list analyzers and suppression classes, then exit")
		vFlag         = flag.String("V", "", "print version information (vettool handshake)")
		flagsOut      = flag.Bool("flags", false, "print supported flags as JSON (vettool handshake)")
		compiler      = flag.Bool("compiler", false, "run the compiler-telemetry gate instead of the AST analyzers")
		baselinePath  = flag.String("baseline", "lint_baseline.json", "compiler-telemetry baseline file (with -compiler)")
		baselineWrite = flag.Bool("baseline-write", false, "write the baseline from the current build instead of gating (with -compiler)")
		noRebuild     = flag.Bool("no-rebuild", false, "skip the forced rebuild (-a); only sound on a cold build cache (with -compiler)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: subsimlint [-json] [-compiler [-baseline file] [-baseline-write]] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *vFlag != "":
		printVersion()
		return
	case *flagsOut:
		fmt.Println("[]") // no analyzer flags are exposed to go vet
		return
	case *list:
		printAnalyzers()
		return
	case *compiler:
		os.Exit(compilerGate(flag.Args(), *baselinePath, *baselineWrite, !*noRebuild))
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}

	loader := lintpass.NewLoader()
	pkgs, err := loader.Load(args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "subsimlint:", err)
		os.Exit(2)
	}
	diags := lintpass.Run(pkgs, lintpass.All())
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lintpass.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "subsimlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "subsimlint: %d diagnostic(s) across %d package(s)\n", len(diags), len(pkgs))
		}
		os.Exit(1)
	}
}

// compilerGate runs the -compiler mode: collect escape/bounds telemetry
// for the module in the current directory and either refresh the
// baseline or gate against it. Exit codes follow the linter convention:
// 0 clean, 1 budget exceeded, 2 build or I/O failure.
func compilerGate(patterns []string, baselinePath string, write, rebuild bool) int {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "subsimlint:", err)
		return 2
	}
	tel, err := lintpass.CollectCompilerTelemetry(lintpass.CompilerConfig{
		Dir:      dir,
		Patterns: patterns,
		Rebuild:  rebuild,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "subsimlint:", err)
		return 2
	}
	if write {
		b := lintpass.NewBaseline(tel)
		if err := lintpass.WriteBaseline(baselinePath, b); err != nil {
			fmt.Fprintln(os.Stderr, "subsimlint:", err)
			return 2
		}
		fmt.Printf("subsimlint: wrote %s with %d hotpath function(s)\n", baselinePath, len(b.Hotpath))
		return 0
	}
	baseline, err := lintpass.ReadBaseline(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "subsimlint: %v (run with -baseline-write to create it)\n", err)
		return 2
	}
	failures, notes := lintpass.Gate(tel, baseline)
	for _, n := range notes {
		fmt.Println("note:", n)
	}
	for _, f := range failures {
		fmt.Println("FAIL:", f)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "subsimlint: compiler-telemetry gate: %d hotpath budget violation(s); fix the regression or deliberately refresh with -baseline-write\n", len(failures))
		return 1
	}
	fmt.Printf("subsimlint: compiler-telemetry gate clean (%d hotpath function(s) within budget)\n", countHotpath(tel))
	return 0
}

func countHotpath(tel *lintpass.Telemetry) int {
	n := 0
	for _, ft := range tel.Funcs {
		if ft.Hotpath {
			n++
		}
	}
	return n
}

func printAnalyzers() {
	for _, a := range lintpass.All() {
		fmt.Printf("%-15s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("suppression: //lint:allow <class> [reason] on the offending or preceding line")
	classes := lintpass.KnownClasses()
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		fmt.Printf("  %-10s (%s)\n", c, classes[c])
	}
	fmt.Println("annotation:  //subsim:hotpath in a function doc comment opts it into hotpath-alloc and the -compiler escape/bounds gate")
	fmt.Println("annotation:  //subsim:parallel in a function doc comment opts its go statements into gocapture")
}
