// Command subsimlint runs the repository's project-invariant static
// analyzers (see internal/lintpass) over Go packages and exits non-zero
// when any invariant is violated.
//
// Standalone usage:
//
//	subsimlint ./...            # lint the whole module, human-readable
//	subsimlint -json ./...      # machine-readable diagnostics
//	subsimlint -list            # describe the analyzers and directives
//
// The tool is also a `go vet -vettool` compatible unit checker:
//
//	go build -o bin/subsimlint ./cmd/subsimlint
//	go vet -vettool=bin/subsimlint ./...
//
// In vettool mode the go command hands the tool one pre-planned package
// at a time (a *.cfg JSON file with source files and export data); see
// vet.go for the protocol subset implemented.
//
// Exit codes: 0 clean, 1 diagnostics found, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"subsim/internal/lintpass"
)

func main() {
	var (
		jsonOut  = flag.Bool("json", false, "emit diagnostics as a JSON array")
		list     = flag.Bool("list", false, "list analyzers and suppression classes, then exit")
		vFlag    = flag.String("V", "", "print version information (vettool handshake)")
		flagsOut = flag.Bool("flags", false, "print supported flags as JSON (vettool handshake)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: subsimlint [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *vFlag != "":
		printVersion()
		return
	case *flagsOut:
		fmt.Println("[]") // no analyzer flags are exposed to go vet
		return
	case *list:
		printAnalyzers()
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0]))
	}

	loader := lintpass.NewLoader()
	pkgs, err := loader.Load(args...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "subsimlint:", err)
		os.Exit(2)
	}
	diags := lintpass.Run(pkgs, lintpass.All())
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lintpass.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "subsimlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "subsimlint: %d diagnostic(s) across %d package(s)\n", len(diags), len(pkgs))
		}
		os.Exit(1)
	}
}

func printAnalyzers() {
	for _, a := range lintpass.All() {
		fmt.Printf("%-15s %s\n", a.Name, a.Doc)
	}
	fmt.Println()
	fmt.Println("suppression: //lint:allow <class> [reason] on the offending or preceding line")
	classes := lintpass.KnownClasses()
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)
	for _, c := range names {
		fmt.Printf("  %-10s (%s)\n", c, classes[c])
	}
	fmt.Println("annotation:  //subsim:hotpath in a function doc comment opts it into hotpath-alloc")
}
