// Vettool mode: the subset of the go vet unit-checker protocol that
// subsimlint implements so `go vet -vettool=subsimlint ./...` works.
//
// The go command drives a vettool as follows:
//
//  1. `subsimlint -V=full` — print an identity line containing a build
//     ID, used to key vet's result cache (see printVersion);
//  2. `subsimlint -flags` — print a JSON array describing tool flags the
//     go command may forward (subsimlint exposes none);
//  3. per package: `subsimlint <unit>.cfg` — the cfg file carries the
//     package's source files plus the export-data files of its
//     dependencies. The tool type-checks from export data (no source
//     re-analysis of dependencies), runs the analyzers, writes an
//     (empty: subsimlint exchanges no facts) .vetx facts file, prints
//     findings to stderr, and exits 2 when any were found.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"subsim/internal/lintpass"
)

// vetConfig is the unit-checker config the go command writes for each
// package (the subset of fields subsimlint needs).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit checks one pre-planned package and returns the process exit
// code (0 clean, 2 diagnostics, 1 protocol/type-check failure).
func vetUnit(cfgPath string) int {
	raw, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "subsimlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "subsimlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The facts file must exist even when empty, or the go command
	// complains; subsimlint neither produces nor consumes facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "subsimlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// Match the CLI driver's scope: subsimlint's invariants target
		// production algorithm code, not test assertions (tests do exact
		// float compares and range over test-case maps on purpose). The
		// go command hands vettools the `p [p.test]` and `p_test`
		// variants too; analyzing them here would make the two driver
		// modes disagree.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "subsimlint:", err)
			return 1
		}
		files = append(files, f)
	}
	if len(files) == 0 { // external test package: nothing in scope
		return 0
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	base := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: mappedImporter{cfg.ImportMap, base}}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "subsimlint: %s: type-check failed: %v\n", cfg.ImportPath, err)
		return 1
	}

	dir := cfg.Dir
	if dir == "" && len(cfg.GoFiles) > 0 {
		dir = filepath.Dir(cfg.GoFiles[0])
	}
	pkg := &lintpass.Package{
		Fset:  fset,
		Dir:   dir,
		Path:  cfg.ImportPath,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	diags := lintpass.Run([]*lintpass.Package{pkg}, lintpass.All())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// mappedImporter canonicalises import paths through the unit config's
// ImportMap (source import path → canonical package path) before
// loading export data.
type mappedImporter struct {
	importMap map[string]string
	base      types.Importer
}

func (m mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.base.Import(path)
}

// printVersion implements the `-V=full` handshake: the go command keys
// its vet cache on the printed build ID, so hash the tool binary itself
// — a rebuilt subsimlint invalidates cached vet results.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "subsimlint:", err)
			}
		}
	}
	fmt.Printf("subsimlint version devel buildID=%02x\n", h.Sum(nil))
}
