// Command graphgen generates synthetic social networks in the formats
// the rest of the toolchain consumes.
//
// Usage:
//
//	graphgen -type pa -n 100000 -deg 10 -model wc -out graph.bin
//
// Flags:
//
//	-type       pa (preferential attachment) or er (Erdős–Rényi)
//	-n          node count
//	-deg        attachment degree (pa)
//	-m          edge count (er)
//	-undirected mirror every edge (pa only)
//	-model      weight model: none, wc, wcvariant, uniform, exp, weibull, lt
//	-theta      WC-variant constant (with -model wcvariant)
//	-p          edge probability (with -model uniform)
//	-seed       RNG seed
//	-out        output path; ".bin" selects the binary format
package main

import (
	"flag"
	"fmt"
	"os"

	"subsim/internal/graph"
	"subsim/internal/rng"
)

func main() {
	typ := flag.String("type", "pa", "generator: pa or er")
	n := flag.Int("n", 10000, "node count")
	deg := flag.Int("deg", 10, "attachment degree (pa)")
	m := flag.Int64("m", 100000, "edge count (er)")
	undirected := flag.Bool("undirected", false, "mirror every edge (pa)")
	model := flag.String("model", "wc", "weight model: none, wc, wcvariant, uniform, exp, weibull, lt")
	theta := flag.Float64("theta", 1, "WC-variant constant")
	p := flag.Float64("p", 0.01, "uniform edge probability")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("out", "graph.bin", "output path (.bin = binary, else text)")
	flag.Parse()

	r := rng.New(*seed)
	var g *graph.Graph
	var err error
	switch *typ {
	case "pa":
		g, err = graph.GenPreferentialAttachment(*n, *deg, *undirected, r)
	case "er":
		g, err = graph.GenErdosRenyi(*n, *m, r)
	default:
		err = fmt.Errorf("unknown -type %q", *typ)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}

	switch *model {
	case "none":
	case "wc":
		g.AssignWC()
	case "wcvariant":
		g.AssignWCVariant(*theta)
	case "uniform":
		g.AssignUniform(*p)
	case "exp":
		g.AssignExponential(r, 1)
	case "weibull":
		g.AssignWeibull(r)
	case "lt":
		g.AssignLT()
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown -model %q\n", *model)
		os.Exit(2)
	}

	if err := g.SaveFile(*out); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: n=%d m=%d model=%s\n", *out, g.N(), g.M(), g.Model())
}
