module subsim

go 1.22
