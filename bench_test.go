package subsim_test

// One testing.B benchmark per table/figure of the paper's evaluation
// (Section 7), plus ablation benches for the design choices called out in
// DESIGN.md. These run the same code paths as cmd/imbench but at a size
// suited to `go test -bench=.`; the full parameter sweeps live in the
// imbench binary.

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"subsim"
	"subsim/internal/bench"
	"subsim/internal/coverage"
	"subsim/internal/rng"
	"subsim/internal/rrset"
	"subsim/internal/sampling"
)

// benchGraphs caches the benchmark networks across benchmarks.
var benchGraphs sync.Map

type benchKey struct {
	n, deg int
	model  string
}

func benchGraph(b *testing.B, n, deg int, model string) *subsim.Graph {
	b.Helper()
	key := benchKey{n, deg, model}
	if g, ok := benchGraphs.Load(key); ok {
		return g.(*subsim.Graph)
	}
	g, err := subsim.GenPreferentialAttachment(n, deg, false, 99)
	if err != nil {
		b.Fatal(err)
	}
	switch model {
	case "wc":
		g.AssignWC()
	case "wcvariant":
		g.AssignWCVariant(3)
	case "uniform":
		// Calibrated once so the average RR set size is "high
		// influence" for this graph (~n/10).
		p := bench.CalibrateUniform(g, float64(n)/10, 5)
		g.AssignUniform(p)
	case "exp":
		if err := subsim.AssignSkewed(g, subsim.ModelExponential, 5); err != nil {
			b.Fatal(err)
		}
	case "weibull":
		if err := subsim.AssignSkewed(g, subsim.ModelWeibull, 5); err != nil {
			b.Fatal(err)
		}
	}
	benchGraphs.Store(key, g)
	return g
}

func benchAlgorithm(b *testing.B, g *subsim.Graph, alg subsim.Algorithm, k int) {
	b.Helper()
	b.ReportAllocs()
	var last *subsim.Result
	for i := 0; i < b.N; i++ {
		res, err := subsim.Maximize(g, alg, subsim.Options{
			K: k, Eps: 0.2, Seed: uint64(i + 1), Workers: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.RRStats.Sets), "rrsets")
	b.ReportMetric(last.RRStats.AvgSize(), "avg|R|")
}

// --- Table 2 ---------------------------------------------------------

func BenchmarkTable2Datasets(b *testing.B) {
	ds := bench.QuickDatasets()
	for i := 0; i < b.N; i++ {
		for _, d := range ds {
			if _, err := d.Generate(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figure 1: IM under WC -------------------------------------------

func BenchmarkFig1_IMM(b *testing.B) {
	benchAlgorithm(b, benchGraph(b, 5000, 8, "wc"), subsim.AlgIMM, 50)
}
func BenchmarkFig1_SSA(b *testing.B) {
	benchAlgorithm(b, benchGraph(b, 5000, 8, "wc"), subsim.AlgSSA, 50)
}
func BenchmarkFig1_OPIMC(b *testing.B) {
	benchAlgorithm(b, benchGraph(b, 5000, 8, "wc"), subsim.AlgOPIMC, 50)
}
func BenchmarkFig1_SUBSIM(b *testing.B) {
	benchAlgorithm(b, benchGraph(b, 5000, 8, "wc"), subsim.AlgSUBSIM, 50)
}

// --- Figure 2: RR generation under skewed weights --------------------

func benchRRGeneration(b *testing.B, model string, kind subsim.GeneratorKind) {
	g := benchGraph(b, 5000, 24, model)
	gen := subsim.NewRRGenerator(g, kind)
	r := rng.New(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rrset.GenerateRandom(gen, r, nil)
	}
	st := gen.Stats()
	b.ReportMetric(float64(st.EdgesExamined)/float64(st.Sets), "edges/set")
}

func BenchmarkFig2_Exp_Vanilla(b *testing.B)  { benchRRGeneration(b, "exp", subsim.GenVanilla) }
func BenchmarkFig2_Exp_Subsim(b *testing.B)   { benchRRGeneration(b, "exp", subsim.GenSubsim) }
func BenchmarkFig2_Exp_Bucketed(b *testing.B) { benchRRGeneration(b, "exp", subsim.GenSubsimBucketed) }
func BenchmarkFig2_Exp_BucketedJump(b *testing.B) {
	benchRRGeneration(b, "exp", subsim.GenSubsimBucketedJump)
}
func BenchmarkFig2_Weibull_Vanilla(b *testing.B) { benchRRGeneration(b, "weibull", subsim.GenVanilla) }
func BenchmarkFig2_Weibull_Subsim(b *testing.B)  { benchRRGeneration(b, "weibull", subsim.GenSubsim) }

// --- Figure 3: HIST RR statistics ------------------------------------

func BenchmarkFig3_HISTStats(b *testing.B) {
	g := benchGraph(b, 5000, 8, "wcvariant")
	b.ReportAllocs()
	var last *subsim.Result
	for i := 0; i < b.N; i++ {
		res, err := subsim.Maximize(g, subsim.AlgHIST, subsim.Options{
			K: 100, Eps: 0.2, Seed: uint64(i + 1), Workers: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.SentinelRR), "sentinelRR")
	b.ReportMetric(float64(last.SentinelSize), "sentinels")
	b.ReportMetric(last.RRStats.AvgSize(), "avg|R|")
}

// --- Figure 4: high influence, varying k -----------------------------

func BenchmarkFig4_OPIMC(b *testing.B) {
	benchAlgorithm(b, benchGraph(b, 5000, 8, "wcvariant"), subsim.AlgOPIMC, 50)
}
func BenchmarkFig4_HIST(b *testing.B) {
	benchAlgorithm(b, benchGraph(b, 5000, 8, "wcvariant"), subsim.AlgHIST, 50)
}
func BenchmarkFig4_HISTSubsim(b *testing.B) {
	benchAlgorithm(b, benchGraph(b, 5000, 8, "wcvariant"), subsim.AlgHISTSubsim, 50)
}

// --- Figure 5: influence estimation ----------------------------------

func BenchmarkFig5_ForwardMC(b *testing.B) {
	g := benchGraph(b, 5000, 8, "wcvariant")
	res, err := subsim.Maximize(g, subsim.AlgHISTSubsim, subsim.Options{
		K: 50, Eps: 0.2, Seed: 1, Workers: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subsim.EstimateInfluence(g, res.Seeds, 1000, subsim.IC, uint64(i))
	}
}

// --- Figure 6: WC variant (already covered by Fig4 at θ fixed);
// the sweep lives in imbench. Here: the two θ extremes. ---------------

func BenchmarkFig6_ThetaLow_HISTSubsim(b *testing.B) {
	g := benchGraph(b, 5000, 8, "wc") // θ=1
	benchAlgorithm(b, g, subsim.AlgHISTSubsim, 50)
}
func BenchmarkFig6_ThetaHigh_HISTSubsim(b *testing.B) {
	benchAlgorithm(b, benchGraph(b, 5000, 8, "wcvariant"), subsim.AlgHISTSubsim, 50)
}

// --- Figure 7: Uniform IC --------------------------------------------

func BenchmarkFig7_Uniform_OPIMC(b *testing.B) {
	benchAlgorithm(b, benchGraph(b, 5000, 8, "uniform"), subsim.AlgOPIMC, 50)
}
func BenchmarkFig7_Uniform_HISTSubsim(b *testing.B) {
	benchAlgorithm(b, benchGraph(b, 5000, 8, "uniform"), subsim.AlgHISTSubsim, 50)
}

// --- Ablations --------------------------------------------------------

// BenchmarkAblation_SubsetEqual compares the naive Bernoulli loop with
// geometric skip sampling on an equal-probability vector — the core
// Algorithm 3 trade (one log-based draw per sampled element vs one cheap
// coin per element).
func BenchmarkAblation_SubsetEqual(b *testing.B) {
	const h = 1024
	for _, p := range []float64{0.001, 0.01, 0.1} {
		probs := make([]float64, h)
		for i := range probs {
			probs[i] = p
		}
		logP := math.Log1p(-p)
		b.Run(fmt.Sprintf("naive/p=%g", p), func(b *testing.B) {
			r := rng.New(1)
			cnt := 0
			for i := 0; i < b.N; i++ {
				sampling.Naive(r, probs, func(int) bool { cnt++; return true })
			}
		})
		b.Run(fmt.Sprintf("skip/p=%g", p), func(b *testing.B) {
			r := rng.New(1)
			cnt := 0
			for i := 0; i < b.N; i++ {
				sampling.EqualSkip(r, h, p, logP, func(int) bool { cnt++; return true })
			}
		})
	}
}

// BenchmarkAblation_SubsetGeneral compares the general-IC kernels on a
// skewed (normalised) probability vector.
func BenchmarkAblation_SubsetGeneral(b *testing.B) {
	const h = 1024
	r0 := rng.New(9)
	probs := make([]float64, h)
	var sum float64
	for i := range probs {
		probs[i] = r0.Exponential(1)
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	sorted := append([]float64(nil), probs...)
	for i := 1; i < len(sorted); i++ { // insertion sort descending
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	bb := sampling.NewBucketed(probs)
	bj := sampling.NewBucketedJump(probs)
	kernels := []struct {
		name string
		f    func(r *rng.Source, y func(int) bool)
	}{
		{"naive", func(r *rng.Source, y func(int) bool) { sampling.Naive(r, probs, y) }},
		{"sorted", func(r *rng.Source, y func(int) bool) { sampling.SortedSkip(r, sorted, y) }},
		{"bucketed", bb.Sample},
		{"bucketed-jump", bj.Sample},
	}
	for _, k := range kernels {
		b.Run(k.name, func(b *testing.B) {
			r := rng.New(1)
			cnt := 0
			for i := 0; i < b.N; i++ {
				k.f(r, func(int) bool { cnt++; return true })
			}
		})
	}
}

// BenchmarkAblation_Geometric measures the primitive skip draw with and
// without the precomputed log denominator.
func BenchmarkAblation_Geometric(b *testing.B) {
	logP := math.Log1p(-0.01)
	b.Run("recompute", func(b *testing.B) {
		r := rng.New(1)
		var s int64
		for i := 0; i < b.N; i++ {
			s += r.Geometric(0.01)
		}
	})
	b.Run("precomputed", func(b *testing.B) {
		r := rng.New(1)
		var s int64
		for i := 0; i < b.N; i++ {
			s += r.GeometricFromLog(logP)
		}
	})
}

// BenchmarkAblation_LazyGreedy measures seed selection over a realistic
// RR collection (the coverage index dominates IM node-selection time).
func BenchmarkAblation_LazyGreedy(b *testing.B) {
	g := benchGraph(b, 5000, 8, "wc")
	gen := subsim.NewRRGenerator(g, subsim.GenSubsim)
	sets := subsim.SampleRRSets(gen, 20000, 7)
	outDeg := make([]int32, g.N())
	for v := range outDeg {
		outDeg[v] = int32(g.OutDegree(int32(v)))
	}
	idx := coverage.NewIndex(g.N(), outDeg)
	for _, set := range sets {
		idx.Add(set)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.SelectSeeds(coverage.GreedyOptions{K: 50, Revised: true})
	}
}
