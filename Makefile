# Convenience targets for the SUBSIM/HIST reproduction.

GO ?= go

.PHONY: all build vet test race cover bench benchobs examples experiments quick clean

all: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... 2>&1 | tee test_output.txt

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/...

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Observability overhead: bare vs nil-wrapped vs metrics-on RR generation.
benchobs:
	$(GO) test ./internal/rrset -run '^$$' -bench InstrumentedGenerate -benchmem -count 3

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/viralmarketing
	$(GO) run ./examples/highinfluence
	$(GO) run ./examples/skewed
	$(GO) run ./examples/communities

# Regenerate the paper's evaluation (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/imbench -exp all -scale 0.25 -reps 2 -k 1,10,50,100,200,500,1000

# Seconds-long smoke pass over every experiment.
quick:
	$(GO) run ./cmd/imbench -quick

clean:
	rm -f test_output.txt bench_output.txt imbench graph.bin
