# Convenience targets for the SUBSIM/HIST reproduction.

GO ?= go

.PHONY: all build vet lint vet-strict escape-gate escape-baseline fuzz-smoke test test-alloc race serve-smoke scale-smoke flight-smoke cover bench bench-json bench-scale bench-sketch bench-matrix benchcmp benchcheck benchobs examples experiments quick clean

all: build vet lint test test-alloc race serve-smoke scale-smoke flight-smoke escape-gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-invariant static analysis (determinism, hot-path allocations,
# nil-safe tracers, float equality, unchecked errors, directive hygiene).
# See DESIGN.md "Enforced invariants". Exits non-zero on any diagnostic.
lint:
	$(GO) run ./cmd/subsimlint ./...

# Same analyzers driven through the go vet toolchain (unitchecker-style
# protocol), proving the vettool mode stays wired up.
vet-strict:
	$(GO) build -o bin/subsimlint ./cmd/subsimlint
	$(GO) vet -vettool=bin/subsimlint ./...

# Compiler-telemetry gate: compile with -m=1 and check_bce debugging
# (forced rebuild, so the build cache cannot swallow diagnostics) and
# fail if any //subsim:hotpath function gained a heap escape or bounds
# check over the committed lint_baseline.json budget.
escape-gate:
	$(GO) run ./cmd/subsimlint -compiler -baseline lint_baseline.json ./...

# Deliberately refresh the budget after a reviewed change.
escape-baseline:
	$(GO) run ./cmd/subsimlint -compiler -baseline lint_baseline.json -baseline-write ./...

# 30s native-fuzzing smoke pass per target over the untrusted-input
# parsers and the bucketed sampler invariants (seed corpora committed
# under testdata/fuzz/).
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test ./internal/graph -run '^$$' -fuzz '^FuzzReadText$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/graph -run '^$$' -fuzz '^FuzzReadBinary$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sampling -run '^$$' -fuzz '^FuzzBucketedSampler$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/coverage -run '^$$' -fuzz '^FuzzHLLMerge$$' -fuzztime $(FUZZTIME)

# Text dumps from test/bench targets land under bin/ (gitignored as a
# whole), so scratch artifacts can never reappear at the repo root.
test:
	@mkdir -p bin
	$(GO) test ./... 2>&1 | tee bin/test_output.txt

# Allocation-regression gate: the generate→store→index pipeline must
# stay allocation-free per RR set in steady state (see BENCH_rrset.json),
# including across repeated FillIndex→SelectSeeds rounds (the CSR double
# buffers and selection scratch are reused, not reallocated), and the
# always-on flight recorder must journal and sample without allocating.
test-alloc:
	$(GO) test ./internal/im -run 'AllocFree|AmortizedAllocs|RoundsAllocs' -v
	$(GO) test ./internal/coverage -run 'ScratchReuse' -v
	$(GO) test ./internal/obs/flight -run 'AllocFree' -v

race:
	$(GO) test -race ./...

# End-to-end smoke gate for the live telemetry plane: boots
# `imrun -serve` on a generated graph, asserts every endpoint, checks
# rr_sets_total monotonicity and a live /progress phase mid-run, then
# gates obsdiff on a self-compare (exit 0) and the committed regressed
# fixture (exit 1). See cmd/servesmoke.
serve-smoke:
	$(GO) build -o bin/graphgen ./cmd/graphgen
	$(GO) build -o bin/imrun ./cmd/imrun
	$(GO) build -o bin/obsdiff ./cmd/obsdiff
	$(GO) run ./cmd/servesmoke

# Scaling-observatory smoke gate: run a tiny 2-worker scaling matrix
# end to end (fresh tracer + timeline per cell, per-phase medians,
# Amdahl fits, worker-independence assertion) and obsdiff-self-compare
# the run report it emits, proving the matrix artifacts stay consumable
# by the observability toolchain. Seconds, not minutes.
scale-smoke:
	$(GO) build -o bin/scalematrix ./cmd/scalematrix
	$(GO) build -o bin/obsdiff ./cmd/obsdiff
	bin/scalematrix -graphs pa:3000x4 -gens subsim -workers 1,2 -trials 1 \
		-sets 3000 -rounds 2 -k 10 -report bin/scalematrix_smoke_report.json
	bin/obsdiff bin/scalematrix_smoke_report.json bin/scalematrix_smoke_report.json
	rm -f bin/scalematrix_smoke_report.json

# Post-mortem smoke gate for the flight recorder: force the two crash
# paths out of the real imrun binary (-flight-selftest panic re-panics
# through CapturePanic and must exit 2; -flight-selftest stall wedges an
# open span until the watchdog writes a bundle and exits 0), then prove
# cmd/obsbundle summarizes each bundle and that a self-diff of its run
# report exits 0 — the crash-dump pipeline stays consumable end to end.
flight-smoke:
	$(GO) build -o bin/imrun ./cmd/imrun
	$(GO) build -o bin/obsbundle ./cmd/obsbundle
	rm -rf bin/flightsmoke && mkdir -p bin/flightsmoke/panic bin/flightsmoke/stall
	bin/imrun -flight-selftest panic -flight-dir bin/flightsmoke/panic \
		>/dev/null 2>bin/flightsmoke/panic.log; status=$$?; \
		test $$status -eq 2 || { echo "flight-smoke: panic selftest exit $$status, want 2"; \
		cat bin/flightsmoke/panic.log; exit 1; }
	bin/imrun -flight-selftest stall -flight-dir bin/flightsmoke/stall \
		>/dev/null 2>bin/flightsmoke/stall.log || \
		{ cat bin/flightsmoke/stall.log; exit 1; }
	for d in bin/flightsmoke/panic/*.bundle bin/flightsmoke/stall/*.bundle; do \
		bin/obsbundle $$d >/dev/null || exit 1; \
		bin/obsbundle $$d $$d >/dev/null || exit 1; \
	done
	@echo "flight-smoke: ok"

cover:
	$(GO) test -cover ./internal/...

bench:
	@mkdir -p bin
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bin/bench_output.txt

# RR-pipeline benchmark suite (generate, index, select, end-to-end).
BENCH_RR = BenchmarkFillIndex|BenchmarkGenerateSingle|BenchmarkSelectSeeds|BenchmarkOPIMC_E2E

# Record the RR-pipeline benchmarks into BENCH_rrset.json under LABEL
# (default "current"); committed baselines are "pre-arena" / "arena-csr".
LABEL ?= current
bench-json:
	@mkdir -p bin
	$(GO) test ./internal/im -run '^$$' -bench '$(BENCH_RR)' -benchmem 2>&1 | tee bin/bench_rrset.txt
	$(GO) run ./cmd/benchjson -file BENCH_rrset.json -label $(LABEL) bin/bench_rrset.txt

# Compare two recorded baselines (override OLD/NEW to pick other labels,
# e.g. `make bench-json LABEL=current && make benchcmp NEW=current`).
OLD ?= pre-arena
NEW ?= arena-csr
benchcmp:
	$(GO) run ./cmd/benchjson -file BENCH_rrset.json -compare $(OLD),$(NEW)

# Performance-regression gate: record the current numbers (make bench-json)
# then fail if any RR-pipeline benchmark is >15% slower than the committed
# arena-csr baseline.
benchcheck:
	$(GO) run ./cmd/benchjson -file BENCH_rrset.json -check arena-csr,current

# Worker-scaling suite for the parallel coverage pipeline: the
# phase-split benchmarks (arena→store splice, delta CSR index build,
# first CELF round) at workers 1/4/8 plus the end-to-end RR-pipeline
# shapes, recorded under the "parallel-cover" label. The regression gate
# pins only the serial (_W1) variants against the arena-csr baseline —
# those are machine-independent, while the W4/W8-vs-W1 ratios depend on
# the recording host's core count (on a single core they measure pure
# partitioning overhead and stay informational).
BENCH_SCALE_IM = BenchmarkSplice_|BenchmarkFillSharded_|BenchmarkShardedSelectSeeds_|$(BENCH_RR)
BENCH_SCALE_COV = BenchmarkIndexBuild_|BenchmarkSelectGains_
bench-scale:
	@mkdir -p bin
	$(GO) test ./internal/im -run '^$$' -bench '$(BENCH_SCALE_IM)' -benchmem 2>&1 | tee bin/bench_scale.txt
	$(GO) test ./internal/coverage -run '^$$' -bench '$(BENCH_SCALE_COV)' -benchmem 2>&1 | tee -a bin/bench_scale.txt
	$(GO) run ./cmd/benchjson -file BENCH_rrset.json -label parallel-cover bin/bench_scale.txt
	$(GO) run ./cmd/benchjson -file BENCH_rrset.json -check arena-csr,parallel-cover -filter '_W1$$'

# Coverage-estimator memory/time crossover: the fill→select path through
# the exact CSR index vs the HLL sketch backend on the largest bench
# graph, recorded under the "sketch-cover" label. The "index-bytes"
# extra column is the evidence: the sketch's register file stays at
# m bytes/node while the exact index grows with θ. The gate re-checks
# ns/op of the recorded pair so a sketch slowdown can't creep in.
bench-sketch:
	@mkdir -p bin
	$(GO) test ./internal/im -run '^$$' -bench 'BenchmarkSketchCover' -benchmem 2>&1 | tee bin/bench_sketch.txt
	$(GO) run ./cmd/benchjson -file BENCH_rrset.json -label sketch-cover bin/bench_sketch.txt
	$(GO) run ./cmd/benchjson -file BENCH_rrset.json -check sketch-cover,sketch-cover

# Workers×graph scaling matrix: sweep the full pipeline (generate,
# splice, delta CSR build, select) over worker counts, compute per-phase
# speedup/efficiency curves and least-squares Amdahl serial-fraction
# fits, and record them into BENCH_rrset.json under the "scale-matrix"
# label. On a host where GOMAXPROCS < max workers the run (and the
# recorded JSON) is tagged with a caveat — those rows measure
# partitioning overhead, not speedup. Override MATRIX_* to change shape.
MATRIX_GRAPHS ?= pa:20000x8
MATRIX_GENS ?= subsim,vanilla
MATRIX_WORKERS ?= 1,2,4,8
bench-matrix:
	$(GO) build -o bin/scalematrix ./cmd/scalematrix
	bin/scalematrix -graphs $(MATRIX_GRAPHS) -gens $(MATRIX_GENS) \
		-workers $(MATRIX_WORKERS) -trials 3 \
		-json bin/scalematrix_result.json \
		-bench-file BENCH_rrset.json -bench-label scale-matrix

# Observability overhead: bare vs nil-wrapped vs metrics-on vs
# worker-timed vs live-scraped RR generation, recorded into
# BENCH_rrset.json under the "obs-live" label (committed baseline:
# "obs-live").
benchobs:
	@mkdir -p bin
	$(GO) test ./internal/rrset -run '^$$' -bench InstrumentedGenerate -benchmem -count 3 2>&1 | tee bin/bench_obs.txt
	$(GO) run ./cmd/benchjson -file BENCH_rrset.json -label obs-live bin/bench_obs.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/viralmarketing
	$(GO) run ./examples/highinfluence
	$(GO) run ./examples/skewed
	$(GO) run ./examples/communities

# Regenerate the paper's evaluation (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/imbench -exp all -scale 0.25 -reps 2 -k 1,10,50,100,200,500,1000

# Seconds-long smoke pass over every experiment.
quick:
	$(GO) run ./cmd/imbench -quick

clean:
	rm -f imbench graph.bin
	rm -rf bin
