# Convenience targets for the SUBSIM/HIST reproduction.

GO ?= go

.PHONY: all build vet test test-alloc race cover bench bench-json benchcmp benchobs examples experiments quick clean

all: build vet test test-alloc race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./... 2>&1 | tee test_output.txt

# Allocation-regression gate: the generate→store→index pipeline must
# stay allocation-free per RR set in steady state (see BENCH_rrset.json).
test-alloc:
	$(GO) test ./internal/im -run 'AllocFree|AmortizedAllocs' -v

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./internal/...

bench:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# RR-pipeline benchmark suite (generate, index, select, end-to-end).
BENCH_RR = BenchmarkFillIndex|BenchmarkGenerateSingle|BenchmarkSelectSeeds|BenchmarkOPIMC_E2E

# Record the RR-pipeline benchmarks into BENCH_rrset.json under LABEL
# (default "current"); committed baselines are "pre-arena" / "arena-csr".
LABEL ?= current
bench-json:
	$(GO) test ./internal/im -run '^$$' -bench '$(BENCH_RR)' -benchmem 2>&1 | tee bench_rrset.txt
	$(GO) run ./cmd/benchjson -file BENCH_rrset.json -label $(LABEL) bench_rrset.txt

# Compare two recorded baselines (override OLD/NEW to pick other labels,
# e.g. `make bench-json LABEL=current && make benchcmp NEW=current`).
OLD ?= pre-arena
NEW ?= arena-csr
benchcmp:
	$(GO) run ./cmd/benchjson -file BENCH_rrset.json -compare $(OLD),$(NEW)

# Observability overhead: bare vs nil-wrapped vs metrics-on RR generation.
benchobs:
	$(GO) test ./internal/rrset -run '^$$' -bench InstrumentedGenerate -benchmem -count 3

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/viralmarketing
	$(GO) run ./examples/highinfluence
	$(GO) run ./examples/skewed
	$(GO) run ./examples/communities

# Regenerate the paper's evaluation (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/imbench -exp all -scale 0.25 -reps 2 -k 1,10,50,100,200,500,1000

# Seconds-long smoke pass over every experiment.
quick:
	$(GO) run ./cmd/imbench -quick

clean:
	rm -f test_output.txt bench_output.txt bench_rrset.txt imbench graph.bin
