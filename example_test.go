package subsim_test

import (
	"fmt"
	"log"

	"subsim"
)

// ExampleMaximize demonstrates the primary entry point: select a seed
// set with a certified approximation guarantee.
func ExampleMaximize() {
	g, err := subsim.GenPreferentialAttachment(2000, 5, false, 7)
	if err != nil {
		log.Fatal(err)
	}
	g.AssignWC()
	res, err := subsim.Maximize(g, subsim.AlgSUBSIM, subsim.Options{
		K: 5, Eps: 0.2, Seed: 1, Workers: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("seeds selected:", len(res.Seeds))
	fmt.Println("certified ratio above target:", res.Approx > 1-1/2.718281828459045-0.2)
	// Output:
	// seeds selected: 5
	// certified ratio above target: true
}

// ExampleEstimateInfluence shows independent verification of any seed
// set by forward Monte-Carlo simulation.
func ExampleEstimateInfluence() {
	g := subsim.NewBuilder(3)
	if err := g.AddEdge(0, 1, 1); err != nil {
		log.Fatal(err)
	}
	if err := g.AddEdge(1, 2, 1); err != nil {
		log.Fatal(err)
	}
	spread := subsim.EstimateInfluence(g.Build(), []int32{0}, 100, subsim.IC, 1)
	fmt.Println(spread)
	// Output:
	// 3
}

// ExampleSelectHeuristic runs a guarantee-free baseline.
func ExampleSelectHeuristic() {
	g, err := subsim.GenPreferentialAttachment(500, 4, false, 3)
	if err != nil {
		log.Fatal(err)
	}
	g.AssignWC()
	seeds, err := subsim.SelectHeuristic(g, subsim.HeuristicDegreeDiscount, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("seeds selected:", len(seeds))
	// Output:
	// seeds selected: 3
}

// ExampleNewInfluenceOracle answers many influence queries from one RR
// collection.
func ExampleNewInfluenceOracle() {
	g, err := subsim.GenPreferentialAttachment(1000, 4, false, 9)
	if err != nil {
		log.Fatal(err)
	}
	g.AssignWC()
	oracle, err := subsim.NewInfluenceOracle(subsim.NewRRGenerator(g, subsim.GenSubsim), 20000, 2)
	if err != nil {
		log.Fatal(err)
	}
	single := oracle.Estimate([]int32{0})
	pair := oracle.Estimate([]int32{0, 1})
	fmt.Println("monotone:", pair >= single)
	// Output:
	// monotone: true
}
